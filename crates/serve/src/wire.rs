//! Wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, over a plain TCP
//! stream. Requests are flat objects with an `op` discriminator:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"run","gpu":"HS","cpu":"bodytrack","warm":500,"cycles":2000,"scheme":"dr"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`: `{"ok":true,...}` on success,
//! `{"ok":false,"error":"<code>","message":"..."}` on failure. A `run`
//! success carries the job's `fingerprint` (16 hex digits), a `cache`
//! marker (`"hit"` or `"miss"`), and the full report document as a JSON
//! **string** — escaping and unescaping through the shared routines is
//! lossless, which is what lets the client reprint a cached report
//! byte-identically to an inline `clognet run --json`.
//!
//! Any request key other than `op`/`gpu`/`cpu`/`warm`/`cycles` is
//! treated as a configuration option, exactly as if passed to
//! `clognet run --key value`; the server-side handler validates them.
//!
//! ## Cluster frames
//!
//! `clognet-cluster` extends the same protocol with node-to-node
//! frames (DESIGN.md §11):
//!
//! ```text
//! {"op":"forward","ttl":1,"gpu":"HS",...}          // routed run; ttl 0 = must execute
//! {"op":"replicate","fingerprint":"<16 hex>","report":"<escaped JSON>"}
//! {"op":"replicate-snap","key":"<16 hex>","bytes":"<hex>"}
//! {"op":"peers","from":"<addr>","load":0.5,"known":["<addr>",...]}
//! {"op":"cluster-stats"}
//! ```
//!
//! `replicate-snap` carries a serialized `CLOGSNAP` warmup snapshot as
//! lowercase hex (NDJSON frames must stay valid UTF-8 text); a snapshot
//! whose hex form would not fit under [`MAX_FRAME_BYTES`] is simply not
//! replicated — snapshots are an optimization, never required for
//! correctness.
//!
//! The frame constructors and parsers live here so both sides of every
//! exchange share one spelling.

use crate::json::Json;
use clognet_telemetry::export::{json_escape, json_f64};
use std::collections::BTreeMap;

/// Largest accepted frame (one line, including the newline), in bytes.
/// A `replicate` frame carries a whole escaped report document, so the
/// cap is generous; anything larger is a protocol violation and gets a
/// structured `bad_request` before the connection closes.
pub const MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// Wire error codes (the `error` field of a failure response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, unknown op, missing/invalid fields, unknown
    /// benchmark or configuration option.
    BadRequest,
    /// Admission control: the job queue is full. Retry later.
    Overloaded,
    /// The job's cycle budget exceeds the server's per-job limit.
    CycleLimit,
    /// The job exceeded the server's per-job wall-time limit.
    Timeout,
    /// The server is draining; no new jobs are accepted.
    ShuttingDown,
    /// The worker pool failed to deliver a result (should not happen).
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::CycleLimit => "cycle_limit",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse the wire spelling.
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "overloaded" => ErrorCode::Overloaded,
            "cycle_limit" => ErrorCode::CycleLimit,
            "timeout" => ErrorCode::Timeout,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A simulation job as it travels on the wire: the workload pairing,
/// the cycle budget, and free-form configuration options (the same
/// `--key value` vocabulary as `clognet run`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// GPU benchmark name (Table II).
    pub gpu: String,
    /// CPU benchmark name (PARSEC).
    pub cpu: String,
    /// Warmup cycles (statistics excluded).
    pub warm: u64,
    /// Measured cycles.
    pub cycles: u64,
    /// Configuration options: `scheme`, `layout`, `seed`, ...
    pub opts: BTreeMap<String, String>,
}

impl JobSpec {
    /// A spec with the `clognet run` defaults for everything but the
    /// workload pairing.
    pub fn new(gpu: &str, cpu: &str) -> JobSpec {
        JobSpec {
            gpu: gpu.to_string(),
            cpu: cpu.to_string(),
            warm: 6_000,
            cycles: 15_000,
            opts: BTreeMap::new(),
        }
    }

    /// Build from a parsed request (or batch-file) object. Workload
    /// names default like `clognet run` (HS + bodytrack); unknown keys
    /// become options, with numeric values rendered back to strings.
    ///
    /// # Errors
    ///
    /// Non-object input, non-string workload names, non-integer cycle
    /// counts, or option values that are not scalars.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let obj = v.as_obj().ok_or("job must be a JSON object")?;
        let mut spec = JobSpec::new("HS", "bodytrack");
        for (k, val) in obj {
            match k.as_str() {
                "op" => {}
                "gpu" => spec.gpu = val.as_str().ok_or("`gpu` must be a string")?.to_string(),
                "cpu" => spec.cpu = val.as_str().ok_or("`cpu` must be a string")?.to_string(),
                "warm" => {
                    spec.warm = val
                        .as_u64()
                        .ok_or("`warm` must be a non-negative integer")?
                }
                "cycles" => {
                    spec.cycles = val
                        .as_u64()
                        .ok_or("`cycles` must be a non-negative integer")?
                }
                _ => {
                    let s = match val {
                        Json::Str(s) => s.clone(),
                        Json::Bool(b) => b.to_string(),
                        Json::Num(n) if n.fract() == 0.0 => format!("{}", *n as i64),
                        Json::Num(n) => format!("{n}"),
                        _ => return Err(format!("option `{k}` must be a scalar")),
                    };
                    spec.opts.insert(k.clone(), s);
                }
            }
        }
        Ok(spec)
    }

    /// Serialize as a `run` request line (no trailing newline).
    pub fn to_request_line(&self) -> String {
        self.line_with_op("run", "")
    }

    /// Serialize as a cluster `forward` frame: the same job, flagged as
    /// already-routed. `ttl` is the number of *further* hops the
    /// receiver may take (0 = execute here, saturated or not).
    pub fn to_forward_line(&self, ttl: u32) -> String {
        self.line_with_op("forward", &format!("\"ttl\":{ttl},"))
    }

    fn line_with_op(&self, op: &str, extra: &str) -> String {
        let mut out = format!(
            "{{\"op\":\"{}\",{extra}\"gpu\":\"{}\",\"cpu\":\"{}\",\"warm\":{},\"cycles\":{}",
            json_escape(op),
            json_escape(&self.gpu),
            json_escape(&self.cpu),
            self.warm,
            self.cycles
        );
        for (k, v) in &self.opts {
            out.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        out.push('}');
        out
    }
}

/// A decoded cluster `forward` frame: the routed job plus its remaining
/// hop budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardFrame {
    /// The job being routed.
    pub spec: JobSpec,
    /// Further hops the receiver may take (0 = must execute locally).
    pub ttl: u32,
}

/// Decode a `forward` frame. The `ttl` field is routing metadata, not a
/// job option — it is stripped before the [`JobSpec`] is built so the
/// fingerprint is identical to the original `run` request's.
///
/// # Errors
///
/// Non-object input, a non-integer `ttl`, or an invalid job spec.
pub fn parse_forward(v: &Json) -> Result<ForwardFrame, String> {
    let obj = v.as_obj().ok_or("forward frame must be a JSON object")?;
    let ttl = match obj.get("ttl") {
        None => 0,
        Some(t) => u32::try_from(t.as_u64().ok_or("`ttl` must be a non-negative integer")?)
            .map_err(|_| "`ttl` out of range".to_string())?,
    };
    let mut stripped = obj.clone();
    stripped.remove("ttl");
    let spec = JobSpec::from_json(&Json::Obj(stripped))?;
    Ok(ForwardFrame { spec, ttl })
}

/// A decoded cluster `replicate` frame: a cache entry being copied to a
/// ring successor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateFrame {
    /// The entry's fingerprint.
    pub fingerprint: u64,
    /// The report bytes, exactly as the owner computed them.
    pub report: String,
}

/// Build a `replicate` frame line. `fingerprint` must be the canonical
/// 16-hex-digit spelling ([`clognet_proto::fingerprint_hex`]).
pub fn replicate_line(fingerprint: &str, report: &str) -> String {
    format!(
        "{{\"op\":\"replicate\",\"fingerprint\":\"{}\",\"report\":\"{}\"}}",
        json_escape(fingerprint),
        json_escape(report)
    )
}

/// Decode a `replicate` frame.
///
/// # Errors
///
/// A missing/malformed fingerprint or a missing report.
pub fn parse_replicate(v: &Json) -> Result<ReplicateFrame, String> {
    let hex = v
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or("replicate frame missing string `fingerprint`")?;
    if hex.len() != 16 {
        return Err(format!("fingerprint `{hex}` is not 16 hex digits"));
    }
    let fingerprint = u64::from_str_radix(hex, 16)
        .map_err(|_| format!("fingerprint `{hex}` is not 16 hex digits"))?;
    let report = v
        .get("report")
        .and_then(Json::as_str)
        .ok_or("replicate frame missing string `report`")?
        .to_string();
    Ok(ReplicateFrame {
        fingerprint,
        report,
    })
}

/// A decoded cluster `replicate-snap` frame: a warmup snapshot being
/// copied to a ring successor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFrame {
    /// The snapshot key ([`clognet_proto::snapshot_key`]).
    pub key: u64,
    /// The serialized `CLOGSNAP` bytes, exactly as the owner took them.
    pub bytes: Vec<u8>,
}

/// Lowercase hex encoding for binary payloads carried on the NDJSON
/// wire.
pub fn hex_bytes(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[usize::from(b >> 4)] as char);
        out.push(HEX[usize::from(b & 0xf)] as char);
    }
    out
}

/// Decode [`hex_bytes`] output.
///
/// # Errors
///
/// Odd length or a non-hex digit.
pub fn parse_hex_bytes(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex payload has odd length".into());
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or("hex payload has a non-hex digit")?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or("hex payload has a non-hex digit")?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

/// Build a `replicate-snap` frame line. `key` must be the canonical
/// 16-hex-digit spelling ([`clognet_proto::fingerprint_hex`]).
pub fn replicate_snap_line(key: &str, bytes: &[u8]) -> String {
    format!(
        "{{\"op\":\"replicate-snap\",\"key\":\"{}\",\"bytes\":\"{}\"}}",
        json_escape(key),
        hex_bytes(bytes)
    )
}

/// Decode a `replicate-snap` frame.
///
/// # Errors
///
/// A missing/malformed key or missing/non-hex bytes.
pub fn parse_replicate_snap(v: &Json) -> Result<SnapshotFrame, String> {
    let hex = v
        .get("key")
        .and_then(Json::as_str)
        .ok_or("replicate-snap frame missing string `key`")?;
    if hex.len() != 16 {
        return Err(format!("snapshot key `{hex}` is not 16 hex digits"));
    }
    let key = u64::from_str_radix(hex, 16)
        .map_err(|_| format!("snapshot key `{hex}` is not 16 hex digits"))?;
    let bytes = parse_hex_bytes(
        v.get("bytes")
            .and_then(Json::as_str)
            .ok_or("replicate-snap frame missing string `bytes`")?,
    )?;
    Ok(SnapshotFrame { key, bytes })
}

/// A decoded `peers` heartbeat/gossip exchange — the same shape is used
/// for the request (with `from` set) and the response (where `from` is
/// the responder's identity).
#[derive(Debug, Clone, PartialEq)]
pub struct PeerExchange {
    /// The sender's advertised address (ring identity).
    pub from: String,
    /// The sender's load: queued + running jobs per worker.
    pub load: f64,
    /// Every other member address the sender knows (gossip).
    pub known: Vec<String>,
}

fn peer_fields(from: &str, load: f64, known: &[String]) -> String {
    let list: Vec<String> = known
        .iter()
        .map(|a| format!("\"{}\"", json_escape(a)))
        .collect();
    format!(
        "\"from\":\"{}\",\"load\":{},\"known\":[{}]",
        json_escape(from),
        json_f64(load),
        list.join(",")
    )
}

/// Build a `peers` heartbeat request line.
pub fn peers_line(from: &str, load: f64, known: &[String]) -> String {
    format!("{{\"op\":\"peers\",{}}}", peer_fields(from, load, known))
}

/// Build the success response to a `peers` exchange.
pub fn peers_response(from: &str, load: f64, known: &[String]) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"peers\",{}}}",
        peer_fields(from, load, known)
    )
}

/// Decode either side of a `peers` exchange.
///
/// # Errors
///
/// A missing `from`, a non-numeric `load`, or a non-string entry in
/// `known`.
pub fn parse_peers(v: &Json) -> Result<PeerExchange, String> {
    let from = v
        .get("from")
        .and_then(Json::as_str)
        .ok_or("peers frame missing string `from`")?
        .to_string();
    let load = v
        .get("load")
        .and_then(Json::as_f64)
        .ok_or("peers frame missing numeric `load`")?;
    let mut known = Vec::new();
    if let Some(arr) = v.get("known").and_then(Json::as_arr) {
        for item in arr {
            known.push(
                item.as_str()
                    .ok_or("peers `known` entries must be strings")?
                    .to_string(),
            );
        }
    }
    Ok(PeerExchange { from, load, known })
}

/// A successful `run` response, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The job fingerprint, 16 hex digits.
    pub fingerprint: String,
    /// Whether the report came from the content-addressed cache.
    pub cache_hit: bool,
    /// The report document, byte-identical to `clognet run --json`.
    pub report: String,
}

/// Build a successful `run` response line.
pub fn run_response(fingerprint: &str, cache_hit: bool, report: &str) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"run\",\"fingerprint\":\"{}\",\"cache\":\"{}\",\"report\":\"{}\"}}",
        json_escape(fingerprint),
        if cache_hit { "hit" } else { "miss" },
        json_escape(report)
    )
}

/// Build a failure response line.
pub fn error_response(code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
        code.as_str(),
        json_escape(message)
    )
}

/// Build a trivial success response (`ping`, `shutdown`).
pub fn ok_response(op: &str) -> String {
    format!("{{\"ok\":true,\"op\":\"{}\"}}", json_escape(op))
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `run` success.
    Run(RunResult),
    /// Any other success, with the parsed body for field access.
    Ok(Json),
    /// Failure.
    Error {
        /// The error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Decode one response line.
///
/// # Errors
///
/// Malformed JSON or a response missing its required fields.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = Json::parse(line)?;
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => {
            let code = v
                .get("error")
                .and_then(Json::as_str)
                .and_then(ErrorCode::from_wire)
                .ok_or("error response without a known `error` code")?;
            let message = v
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            return Ok(Response::Error { code, message });
        }
        None => return Err("response missing boolean `ok`".into()),
    }
    if v.get("op").and_then(Json::as_str) == Some("run") {
        let fingerprint = v
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("run response missing `fingerprint`")?
            .to_string();
        let cache_hit = match v.get("cache").and_then(Json::as_str) {
            Some("hit") => true,
            Some("miss") => false,
            _ => return Err("run response missing `cache`".into()),
        };
        let report = v
            .get("report")
            .and_then(Json::as_str)
            .ok_or("run response missing `report`")?
            .to_string();
        return Ok(Response::Run(RunResult {
            fingerprint,
            cache_hit,
            report,
        }));
    }
    Ok(Response::Ok(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips_through_its_request_line() {
        let mut spec = JobSpec::new("MM", "canneal");
        spec.warm = 100;
        spec.cycles = 400;
        spec.opts.insert("scheme".into(), "dr".into());
        spec.opts.insert("seed".into(), "7".into());
        let line = spec.to_request_line();
        let parsed = JobSpec::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn job_spec_defaults_match_clognet_run() {
        let spec = JobSpec::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(spec.gpu, "HS");
        assert_eq!(spec.cpu, "bodytrack");
        assert_eq!(spec.warm, 6_000);
        assert_eq!(spec.cycles, 15_000);
        assert!(spec.opts.is_empty());
    }

    #[test]
    fn numeric_and_boolean_options_become_strings() {
        let v = Json::parse(r#"{"gpu":"HS","seed":9,"no-ff":true}"#).unwrap();
        let spec = JobSpec::from_json(&v).unwrap();
        assert_eq!(spec.opts.get("seed").map(String::as_str), Some("9"));
        assert_eq!(spec.opts.get("no-ff").map(String::as_str), Some("true"));
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(JobSpec::from_json(&Json::parse("[1]").unwrap()).is_err());
        assert!(JobSpec::from_json(&Json::parse(r#"{"gpu":3}"#).unwrap()).is_err());
        assert!(JobSpec::from_json(&Json::parse(r#"{"warm":-1}"#).unwrap()).is_err());
        assert!(JobSpec::from_json(&Json::parse(r#"{"x":[1]}"#).unwrap()).is_err());
    }

    #[test]
    fn run_response_round_trips_reports_byte_identically() {
        let report = "{\"scheme\":\"DR\",\"weird\":\"a\\\"b\\\\c\",\"gpu_ipc\":12.25}";
        let line = run_response("00ff00ff00ff00ff", true, report);
        match parse_response(&line).unwrap() {
            Response::Run(r) => {
                assert!(r.cache_hit);
                assert_eq!(r.fingerprint, "00ff00ff00ff00ff");
                assert_eq!(r.report, report);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_responses_carry_codes() {
        let line = error_response(ErrorCode::Overloaded, "queue full (8 deep)");
        match parse_response(&line).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Overloaded);
                assert!(message.contains("queue full"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            ErrorCode::from_wire("cycle_limit"),
            Some(ErrorCode::CycleLimit)
        );
        assert_eq!(ErrorCode::from_wire("bogus"), None);
    }

    #[test]
    fn forward_frames_strip_ttl_and_preserve_the_spec() {
        let mut spec = JobSpec::new("MM", "canneal");
        spec.opts.insert("scheme".into(), "dr".into());
        let line = spec.to_forward_line(1);
        let parsed = parse_forward(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed.ttl, 1);
        assert_eq!(parsed.spec, spec, "ttl must not leak into the job options");
        // A run line round-trips through parse_forward with ttl 0.
        let plain = parse_forward(&Json::parse(&spec.to_request_line()).unwrap()).unwrap();
        assert_eq!(plain.ttl, 0);
        assert_eq!(plain.spec, spec);
        assert!(parse_forward(&Json::parse("[1]").unwrap()).is_err());
        assert!(parse_forward(&Json::parse(r#"{"ttl":-1}"#).unwrap()).is_err());
    }

    #[test]
    fn replicate_frames_round_trip_reports_byte_identically() {
        let report = "{\"scheme\":\"DR\",\"weird\":\"a\\\"b\\\\c\"}";
        let line = replicate_line("00ff00ff00ff00ff", report);
        let frame = parse_replicate(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(frame.fingerprint, 0x00ff_00ff_00ff_00ff);
        assert_eq!(frame.report, report);
        // The canonical hex helper and the wire agree on the spelling.
        let hex = clognet_proto::fingerprint_hex(frame.fingerprint);
        let again = parse_replicate(&Json::parse(&replicate_line(&hex, report)).unwrap()).unwrap();
        assert_eq!(again.fingerprint, frame.fingerprint);
        for bad in [
            r#"{"op":"replicate"}"#,
            r#"{"op":"replicate","fingerprint":"xyz","report":""}"#,
            r#"{"op":"replicate","fingerprint":"ff","report":""}"#,
            r#"{"op":"replicate","fingerprint":"00ff00ff00ff00ff"}"#,
        ] {
            assert!(parse_replicate(&Json::parse(bad).unwrap()).is_err());
        }
    }

    #[test]
    fn replicate_snap_frames_round_trip_binary_payloads() {
        // Every byte value survives the hex round trip.
        let bytes: Vec<u8> = (0u8..=255).collect();
        let line = replicate_snap_line("00ff00ff00ff00ff", &bytes);
        let frame = parse_replicate_snap(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(frame.key, 0x00ff_00ff_00ff_00ff);
        assert_eq!(frame.bytes, bytes);
        let empty = parse_replicate_snap(
            &Json::parse(&replicate_snap_line("0000000000000001", &[])).unwrap(),
        )
        .unwrap();
        assert!(empty.bytes.is_empty());
        for bad in [
            r#"{"op":"replicate-snap"}"#,
            r#"{"op":"replicate-snap","key":"ff","bytes":""}"#,
            r#"{"op":"replicate-snap","key":"00ff00ff00ff00ff"}"#,
            r#"{"op":"replicate-snap","key":"00ff00ff00ff00ff","bytes":"abc"}"#,
            r#"{"op":"replicate-snap","key":"00ff00ff00ff00ff","bytes":"zz"}"#,
        ] {
            assert!(parse_replicate_snap(&Json::parse(bad).unwrap()).is_err());
        }
    }

    #[test]
    fn peers_frames_round_trip_both_directions() {
        let known = vec!["127.0.0.1:9402".to_string(), "127.0.0.1:9403".to_string()];
        for line in [
            peers_line("127.0.0.1:9401", 0.5, &known),
            peers_response("127.0.0.1:9401", 0.5, &known),
        ] {
            let p = parse_peers(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(p.from, "127.0.0.1:9401");
            assert!((p.load - 0.5).abs() < 1e-12);
            assert_eq!(p.known, known);
        }
        let empty = parse_peers(&Json::parse(&peers_line("a", 0.0, &[])).unwrap()).unwrap();
        assert!(empty.known.is_empty());
        assert!(parse_peers(&Json::parse(r#"{"op":"peers"}"#).unwrap()).is_err());
        assert!(
            parse_peers(&Json::parse(r#"{"from":"a","load":0,"known":[1]}"#).unwrap()).is_err()
        );
    }

    #[test]
    fn plain_ok_responses_parse_as_ok() {
        match parse_response(&ok_response("ping")).unwrap() {
            Response::Ok(v) => assert_eq!(v.get("op").unwrap().as_str(), Some("ping")),
            other => panic!("unexpected {other:?}"),
        }
    }
}
