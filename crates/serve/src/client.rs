//! Client side: connect (with deterministic retry), submit, decode.
//!
//! Transient connect failures — the server still binding, a drained
//! listener mid-restart — are retried with capped exponential backoff.
//! The jitter is drawn from a seeded [`clognet_rng::SmallRng`], so a
//! given [`RetryPolicy`] produces the same delay schedule every run:
//! client behavior is as reproducible as the simulations it requests.

use crate::wire::{parse_response, JobSpec, Response, RunResult};
use clognet_rng::{Rng, SeedableRng, SmallRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Connect-retry schedule: capped exponential backoff with
/// deterministic jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total connect attempts before giving up (minimum 1).
    pub attempts: u32,
    /// Base delay before the second attempt, in milliseconds.
    pub base_ms: u64,
    /// Delay ceiling, in milliseconds.
    pub cap_ms: u64,
    /// Jitter seed; a fixed seed fixes the whole schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base_ms: 50,
            cap_ms: 2_000,
            seed: 0x0C10_64E7,
        }
    }
}

impl RetryPolicy {
    /// Derive a policy whose jitter stream is decorrelated by a job
    /// fingerprint. A batch of clients resubmitting after a node
    /// death all carry the same default seed — without this they
    /// would back off in lockstep and hammer the recovering node in
    /// synchronized waves. Mixing the fingerprint (already a
    /// well-spread 64-bit content address) into the seed gives every
    /// *job* its own deterministic schedule: reproducible run to run,
    /// desynchronized client to client.
    pub fn for_fingerprint(&self, fp: u64) -> RetryPolicy {
        RetryPolicy {
            seed: self
                .seed
                .rotate_left(32)
                .wrapping_add(fp.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..self.clone()
        }
    }

    /// The full backoff schedule: delay *before* retry `k` (the
    /// second attempt is preceded by `delays()[0]`). Exponential
    /// doubling from `base_ms`, capped at `cap_ms`, scaled by a
    /// seeded jitter factor in `[0.5, 1.0)` so synchronized clients
    /// desynchronize identically every run.
    pub fn delays(&self) -> Vec<Duration> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        (1..self.attempts)
            .map(|k| {
                let exp = self
                    .base_ms
                    .saturating_mul(1u64 << (k - 1).min(20))
                    .min(self.cap_ms);
                let jitter = 0.5 + 0.5 * rng.next_f64();
                Duration::from_millis((exp as f64 * jitter) as u64)
            })
            .collect()
    }
}

/// A connected client holding one NDJSON request/response stream.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A client-side failure: transport errors or protocol violations.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes did not decode as a protocol response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect, retrying transient failures per `policy`.
    ///
    /// # Errors
    ///
    /// The last connect error once attempts are exhausted.
    pub fn connect(addr: &str, policy: &RetryPolicy) -> Result<Client, ClientError> {
        let delays = policy.delays();
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delays[(attempt - 1) as usize]);
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Client {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::other("no connect attempts made")
        })))
    }

    /// Send one raw request line and read one response line.
    ///
    /// # Errors
    ///
    /// Transport failure, or a server that closed without responding.
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection without responding".into(),
            ));
        }
        Ok(response.trim_end_matches(['\n', '\r']).to_string())
    }

    /// Send a request line and decode the response.
    ///
    /// # Errors
    ///
    /// Transport failure or an undecodable response.
    pub fn request(&mut self, line: &str) -> Result<Response, ClientError> {
        let raw = self.request_line(line)?;
        parse_response(&raw).map_err(ClientError::Protocol)
    }

    /// Submit a job; a server-side rejection comes back as
    /// `Ok(Err(Response::Error ...))` via the [`Response`] in the error
    /// position of the returned result.
    ///
    /// # Errors
    ///
    /// Transport/protocol failure, or the server's structured error.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<RunResult, ClientError> {
        match self.request(&spec.to_request_line())? {
            Response::Run(r) => Ok(r),
            Response::Error { code, message } => Err(ClientError::Protocol(format!(
                "server rejected job: {} ({message})",
                code.as_str()
            ))),
            Response::Ok(_) => Err(ClientError::Protocol(
                "expected a run response, got a plain ok".into(),
            )),
        }
    }

    /// Round-trip a `ping`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failure.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request("{\"op\":\"ping\"}")? {
            Response::Ok(_) => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Fetch the server's `stats` document (raw response line).
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.request_line("{\"op\":\"stats\"}")
    }

    /// Ask the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport/protocol failure.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request("{\"op\":\"shutdown\"}")? {
            Response::Ok(_) => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let policy = RetryPolicy {
            attempts: 6,
            base_ms: 100,
            cap_ms: 400,
            seed: 42,
        };
        let a = policy.delays();
        let b = policy.delays();
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 5);
        for (k, d) in a.iter().enumerate() {
            let exp = (100u64 << k).min(400);
            let ms = d.as_millis() as u64;
            assert!(
                ms >= exp / 2 && ms < exp,
                "delay {k} = {ms}ms vs exp {exp}ms"
            );
        }
    }

    #[test]
    fn different_seeds_desynchronize() {
        let a = RetryPolicy {
            seed: 1,
            ..RetryPolicy::default()
        };
        let b = RetryPolicy {
            seed: 2,
            ..RetryPolicy::default()
        };
        assert_ne!(a.delays(), b.delays());
    }

    #[test]
    fn fingerprint_jitter_desynchronizes_jobs_deterministically() {
        let base = RetryPolicy::default();
        let a = base.for_fingerprint(0x00ff_00ff_00ff_00ff);
        let b = base.for_fingerprint(0x00ff_00ff_00ff_0100);
        // Same job, same schedule — reproducibility survives.
        assert_eq!(
            a.delays(),
            base.for_fingerprint(0x00ff_00ff_00ff_00ff).delays()
        );
        // Different jobs desynchronize even from one base seed.
        assert_ne!(a.delays(), b.delays());
        assert_ne!(a.delays(), base.delays());
        // Only the jitter moves; the envelope is untouched.
        assert_eq!(a.attempts, base.attempts);
        assert_eq!((a.base_ms, a.cap_ms), (base.base_ms, base.cap_ms));
    }

    #[test]
    fn connect_to_nothing_exhausts_attempts_quickly() {
        let policy = RetryPolicy {
            attempts: 2,
            base_ms: 1,
            cap_ms: 1,
            seed: 0,
        };
        // Reserved port that nothing listens on: bind-then-drop.
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        drop(l);
        assert!(Client::connect(&addr, &policy).is_err());
    }
}
