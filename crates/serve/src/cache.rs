//! Content-addressed result and snapshot caches.
//!
//! The simulator is deterministic, so a report is fully determined by
//! its job fingerprint ([`clognet_proto::fingerprint`]): the
//! [`ResultCache`] maps `fingerprint -> report bytes` and a hit returns
//! the *identical* bytes a fresh simulation would produce. Eviction is
//! FIFO by insertion order — entries are equally cheap to regenerate,
//! so a simple bound on resident entries beats LRU bookkeeping on the
//! request path.
//!
//! The [`SnapshotCache`] is the second tier: it maps a snapshot key
//! ([`clognet_proto::snapshot_key`] over the canonical config,
//! workload pairing, and warmup cycle) to the serialized `CLOGSNAP`
//! state a finished warmup produced. A job that misses the result
//! cache but shares its warmup prefix with a cached snapshot resumes
//! mid-flight instead of re-simulating the warmup.

use clognet_proto::FxHashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// A bounded fingerprint-addressed store of report documents.
#[derive(Debug)]
pub struct ResultCache {
    map: FxHashMap<u64, String>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` reports (minimum 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a fingerprint, recording a hit or miss.
    pub fn lookup(&mut self, fp: u64) -> Option<String> {
        match self.map.get(&fp) {
            Some(report) => {
                self.hits += 1;
                Some(report.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a report. Re-inserting an existing fingerprint is a
    /// no-op: determinism guarantees the bytes match, and keeping the
    /// first copy keeps the eviction order honest when concurrent
    /// misses on the same job race to insert.
    pub fn insert(&mut self, fp: u64, report: String) {
        if self.map.contains_key(&fp) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(fp, report);
        self.order.push_back(fp);
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups (0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded store of serialized warmup snapshots, keyed by
/// [`clognet_proto::snapshot_key`]. Entries are shared as `Arc` so a
/// hit hands bytes to a worker without copying hundreds of kilobytes
/// under the cache lock. Eviction is FIFO, like [`ResultCache`].
#[derive(Debug)]
pub struct SnapshotCache {
    map: FxHashMap<u64, Arc<Vec<u8>>>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<u64>,
    capacity: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
}

impl SnapshotCache {
    /// A cache holding at most `capacity` snapshots (minimum 1).
    pub fn new(capacity: usize) -> SnapshotCache {
        SnapshotCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a snapshot key, recording a hit or miss.
    pub fn lookup(&mut self, key: u64) -> Option<Arc<Vec<u8>>> {
        match self.map.get(&key) {
            Some(snap) => {
                self.hits += 1;
                Some(Arc::clone(snap))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a snapshot. Re-inserting an existing key is a no-op:
    /// snapshots are byte-stable, so the first copy is as good as any
    /// later one and the eviction order stays honest under racing
    /// inserts.
    pub fn insert(&mut self, key: u64, snapshot: Arc<Vec<u8>>) {
        if self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                if let Some(old) = self.map.remove(&oldest) {
                    self.bytes -= old.len();
                }
            }
        }
        self.bytes += snapshot.len();
        self.map.insert(key, snapshot);
        self.order.push_back(key);
    }

    /// Resident snapshots.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total serialized bytes held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Lookups that found a snapshot.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_hit() {
        let mut c = ResultCache::new(8);
        assert_eq!(c.lookup(1), None);
        c.insert(1, "report-1".into());
        assert_eq!(c.lookup(1).as_deref(), Some("report-1"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        c.insert(3, "c".into());
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(1), None, "oldest entry evicted");
        assert_eq!(c.lookup(2).as_deref(), Some("b"));
        assert_eq!(c.lookup(3).as_deref(), Some("c"));
    }

    #[test]
    fn duplicate_insert_is_a_no_op() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into());
        c.insert(1, "different".into());
        assert_eq!(c.lookup(1).as_deref(), Some("a"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut c = ResultCache::new(0);
        c.insert(1, "a".into());
        assert_eq!(c.lookup(1).as_deref(), Some("a"));
    }

    fn snap(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; n])
    }

    #[test]
    fn snapshot_cache_hits_and_counts_bytes() {
        let mut c = SnapshotCache::new(4);
        assert!(c.lookup(7).is_none());
        c.insert(7, snap(100));
        assert_eq!(c.lookup(7).map(|s| s.len()), Some(100));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.bytes(), 100);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn snapshot_cache_evicts_fifo_and_releases_bytes() {
        let mut c = SnapshotCache::new(2);
        c.insert(1, snap(10));
        c.insert(2, snap(20));
        c.insert(3, snap(30));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(1).is_none(), "oldest snapshot evicted");
        assert_eq!(c.bytes(), 50, "evicted bytes released");
    }

    #[test]
    fn snapshot_duplicate_insert_is_a_no_op() {
        let mut c = SnapshotCache::new(2);
        c.insert(1, snap(10));
        c.insert(1, snap(99));
        assert_eq!(c.lookup(1).map(|s| s.len()), Some(10));
        assert_eq!(c.bytes(), 10);
    }
}
