//! End-to-end tests for the simulation service, using stub handlers so
//! the robustness contract (memoization, admission control, limits,
//! drain) is exercised without dragging in `clognet-core`.

use clognet_serve::client::{Client, RetryPolicy};
use clognet_serve::json::Json;
use clognet_serve::server::{JobError, JobHandler, ServeConfig, Server};
use clognet_serve::wire::{ErrorCode, JobSpec, Response};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fast retries so tests never sleep long on the happy path.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 20,
        base_ms: 5,
        cap_ms: 50,
        seed: 1,
    }
}

/// A deterministic stub: fingerprint hashes the spec's workload names
/// and cycle counts; `run` counts invocations and renders a small
/// report. Optionally stalls until released (for overload/drain tests).
struct StubHandler {
    runs: AtomicUsize,
    stall: Option<Arc<AtomicUsize>>,
}

impl StubHandler {
    fn new() -> StubHandler {
        StubHandler {
            runs: AtomicUsize::new(0),
            stall: None,
        }
    }

    fn stalling(release: Arc<AtomicUsize>) -> StubHandler {
        StubHandler {
            runs: AtomicUsize::new(0),
            stall: Some(release),
        }
    }
}

impl JobHandler for StubHandler {
    fn fingerprint(&self, spec: &JobSpec) -> Result<u64, JobError> {
        if spec.gpu == "NOPE" {
            return Err(JobError::bad_request("unknown GPU benchmark `NOPE`"));
        }
        let mut fp = spec.warm.wrapping_mul(31).wrapping_add(spec.cycles);
        for b in spec.gpu.bytes().chain(spec.cpu.bytes()) {
            fp = fp.wrapping_mul(131).wrapping_add(u64::from(b));
        }
        // Option spellings that resolve identically must collapse: the
        // stub treats `scheme=dr` and `scheme=delegated-replies` alike.
        for (k, v) in &spec.opts {
            let v = if k == "scheme" && v == "delegated-replies" {
                "dr"
            } else {
                v.as_str()
            };
            for b in k.bytes().chain(v.bytes()) {
                fp = fp.wrapping_mul(131).wrapping_add(u64::from(b));
            }
        }
        Ok(fp)
    }

    fn run(&self, spec: &JobSpec, deadline: Instant) -> Result<String, JobError> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        if let Some(release) = &self.stall {
            while release.load(Ordering::SeqCst) == 0 {
                if Instant::now() >= deadline {
                    return Err(JobError {
                        code: ErrorCode::Timeout,
                        message: "deadline exceeded in stub".into(),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Ok(format!(
            "{{\"gpu\":\"{}\",\"cpu\":\"{}\",\"cycles\":{}}}",
            spec.gpu, spec.cpu, spec.cycles
        ))
    }
}

fn serve(cfg: ServeConfig, handler: Arc<StubHandler>) -> (String, clognet_serve::ServerHandle) {
    let server = Server::bind(cfg, handler).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.spawn().expect("spawn");
    (addr, handle)
}

#[test]
fn resubmission_is_a_cache_hit_and_byte_identical() {
    let handler = Arc::new(StubHandler::new());
    let (addr, handle) = serve(ServeConfig::default(), Arc::clone(&handler));
    let mut client = Client::connect(&addr, &fast_retry()).unwrap();

    let spec = JobSpec::new("MM", "canneal");
    let first = client.submit(&spec).unwrap();
    let second = client.submit(&spec).unwrap();
    assert!(!first.cache_hit, "first submission must simulate");
    assert!(
        second.cache_hit,
        "identical resubmission must hit the cache"
    );
    assert_eq!(
        first.report, second.report,
        "reports must be byte-identical"
    );
    assert_eq!(first.fingerprint, second.fingerprint);
    assert_eq!(
        handler.runs.load(Ordering::SeqCst),
        1,
        "the simulation must run exactly once"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn spelling_variants_share_a_cache_entry() {
    let handler = Arc::new(StubHandler::new());
    let (addr, handle) = serve(ServeConfig::default(), Arc::clone(&handler));
    let mut client = Client::connect(&addr, &fast_retry()).unwrap();

    let mut a = JobSpec::new("HS", "bodytrack");
    a.opts.insert("scheme".into(), "dr".into());
    let mut b = a.clone();
    b.opts.insert("scheme".into(), "delegated-replies".into());

    let first = client.submit(&a).unwrap();
    let second = client.submit(&b).unwrap();
    assert!(second.cache_hit, "resolved-equal specs share a fingerprint");
    assert_eq!(first.fingerprint, second.fingerprint);
    assert_eq!(handler.runs.load(Ordering::SeqCst), 1);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn queue_overflow_yields_structured_overloaded_not_a_hang() {
    let release = Arc::new(AtomicUsize::new(0));
    let handler = Arc::new(StubHandler::stalling(Arc::clone(&release)));
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        job_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (addr, handle) = serve(cfg, Arc::clone(&handler));

    // Keep the single worker busy plus one queued job, on separate
    // connections so each waits on its own thread. Sequenced: the
    // second staller is only submitted once the worker has claimed the
    // first, so it is guaranteed the queue slot rather than racing the
    // first job for it.
    let staller = |i: u64| {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, &fast_retry()).unwrap();
            let mut spec = JobSpec::new("HS", "bodytrack");
            spec.cycles = 1_000 + i; // distinct fingerprints
            c.submit(&spec)
        })
    };
    let first = staller(0);
    let t0 = Instant::now();
    while handler.runs.load(Ordering::SeqCst) == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "worker never started"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let second = staller(1);
    let stallers = vec![first, second];
    // Wait until the second job occupies the queue slot (pool depth
    // counts claimed + queued, so 2 means busy worker + full queue).
    let mut probe = Client::connect(&addr, &fast_retry()).unwrap();
    let t0 = Instant::now();
    loop {
        let stats = Json::parse(&probe.stats().unwrap()).unwrap();
        if stats.get("queue_depth").and_then(Json::as_u64) == Some(2) {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "second job never queued"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // A third distinct job must be bounced immediately.
    let mut client = Client::connect(&addr, &fast_retry()).unwrap();
    let mut spec = JobSpec::new("HS", "bodytrack");
    spec.cycles = 9_999;
    let start = Instant::now();
    let response = client.request(&spec.to_request_line()).unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "overload rejection must be prompt, not a hang"
    );
    match response {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded, got {other:?}"),
    }

    // Release the stalled jobs; both must still complete normally.
    release.store(1, Ordering::SeqCst);
    for t in stallers {
        let result = t.join().unwrap().expect("stalled job completes");
        assert!(!result.cache_hit);
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn cycle_budget_above_limit_is_rejected_up_front() {
    let handler = Arc::new(StubHandler::new());
    let cfg = ServeConfig {
        max_job_cycles: 1_000,
        ..ServeConfig::default()
    };
    let (addr, handle) = serve(cfg, Arc::clone(&handler));
    let mut client = Client::connect(&addr, &fast_retry()).unwrap();

    let mut spec = JobSpec::new("HS", "bodytrack");
    spec.warm = 600;
    spec.cycles = 600;
    match client.request(&spec.to_request_line()).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::CycleLimit);
            assert!(
                message.contains("1200"),
                "message names the budget: {message}"
            );
        }
        other => panic!("expected cycle_limit, got {other:?}"),
    }
    assert_eq!(handler.runs.load(Ordering::SeqCst), 0, "never simulated");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn handler_rejections_map_to_bad_request() {
    let handler = Arc::new(StubHandler::new());
    let (addr, handle) = serve(ServeConfig::default(), handler);
    let mut client = Client::connect(&addr, &fast_retry()).unwrap();

    match client.request(&JobSpec::new("NOPE", "bodytrack").to_request_line()) {
        Ok(Response::Error { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("NOPE"));
        }
        other => panic!("expected bad_request, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn deadline_overrun_reports_timeout() {
    // A stall that is never released, with a tiny job timeout: the
    // handler notices the deadline and fails the job as `timeout`.
    let release = Arc::new(AtomicUsize::new(0));
    let handler = Arc::new(StubHandler::stalling(release));
    let cfg = ServeConfig {
        workers: 1,
        job_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let (addr, handle) = serve(cfg, handler);
    let mut client = Client::connect(&addr, &fast_retry()).unwrap();

    match client
        .request(&JobSpec::new("HS", "bodytrack").to_request_line())
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("expected timeout, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn shutdown_drains_inflight_jobs_before_exiting() {
    let release = Arc::new(AtomicUsize::new(0));
    let handler = Arc::new(StubHandler::stalling(Arc::clone(&release)));
    let cfg = ServeConfig {
        workers: 1,
        job_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (addr, handle) = serve(cfg, Arc::clone(&handler));

    // One slow job in flight.
    let slow = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, &fast_retry()).unwrap();
            c.submit(&JobSpec::new("HS", "bodytrack"))
        })
    };
    let t0 = Instant::now();
    while handler.runs.load(Ordering::SeqCst) == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "worker never started"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Shutdown from a second connection; new jobs are refused.
    let mut admin = Client::connect(&addr, &fast_retry()).unwrap();
    admin.shutdown().unwrap();
    match admin.request(&JobSpec::new("MM", "canneal").to_request_line()) {
        Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        // The acceptor may already have closed the connection.
        Err(_) => {}
        other => panic!("expected shutting_down, got {other:?}"),
    }

    // The in-flight job still gets its answer, and the server exits.
    release.store(1, Ordering::SeqCst);
    let result = slow.join().unwrap().expect("in-flight job completes");
    assert!(!result.cache_hit);
    handle.join().unwrap();
}

#[test]
fn stats_reports_queue_cache_and_worker_utilization() {
    let handler = Arc::new(StubHandler::new());
    let cfg = ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    };
    let (addr, handle) = serve(cfg, handler);
    let mut client = Client::connect(&addr, &fast_retry()).unwrap();

    let spec = JobSpec::new("MM", "canneal");
    client.submit(&spec).unwrap(); // miss
    client.submit(&spec).unwrap(); // hit

    let stats = Json::parse(&client.stats().unwrap()).unwrap();
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(stats.get("queue_depth").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("workers").and_then(Json::as_u64), Some(3));
    assert_eq!(stats.get("cache_entries").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("cache_misses").and_then(Json::as_u64), Some(1));
    let rate = stats.get("cache_hit_rate").and_then(Json::as_f64).unwrap();
    assert!((rate - 0.5).abs() < 1e-12);
    let util = stats.get("utilization").and_then(Json::as_arr).unwrap();
    assert_eq!(util.len(), 3, "one utilization figure per worker");
    for u in util {
        let u = u.as_f64().unwrap();
        assert!((0.0..=1.0).contains(&u));
    }
    // The embedded telemetry registry is a well-formed document too.
    let registry = stats.get("registry").expect("registry embedded");
    assert!(registry.get("counters").is_some());

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_and_unknown_requests_get_bad_request() {
    let handler = Arc::new(StubHandler::new());
    let (addr, handle) = serve(ServeConfig::default(), handler);
    let mut client = Client::connect(&addr, &fast_retry()).unwrap();

    for line in ["{not json", "{\"op\":\"dance\"}", "{\"gpu\":\"HS\"}"] {
        match client.request(line).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected bad_request for {line}, got {other:?}"),
        }
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_distinct_submissions_all_complete() {
    let handler = Arc::new(StubHandler::new());
    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 64,
        ..ServeConfig::default()
    };
    let (addr, handle) = serve(cfg, Arc::clone(&handler));

    let threads: Vec<_> = (0..8u64)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, &fast_retry()).unwrap();
                let mut spec = JobSpec::new("HS", "bodytrack");
                spec.cycles = 2_000 + i;
                c.submit(&spec).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(results.len(), 8);
    for (i, r) in results.iter().enumerate() {
        assert!(
            r.report
                .contains(&format!("\"cycles\":{}", 2_000 + i as u64)),
            "result routed back to the right client"
        );
    }
    assert_eq!(handler.runs.load(Ordering::SeqCst), 8);

    let mut client = Client::connect(&addr, &fast_retry()).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}
