//! Export round-trip tests (satellite of the service PR): telemetry
//! documents emitted from a real sampled run must survive re-parsing
//! exactly. `clognet-telemetry` writes with shortest-round-trip float
//! formatting and this crate's [`Json`] parser reads numbers back with
//! `str::parse::<f64>`, so every value should compare bit-equal.

use clognet_core::{System, TelemetryConfig};
use clognet_proto::{Scheme, SystemConfig};
use clognet_serve::json::Json;
use clognet_telemetry::export::{episodes_to_ndjson, registry_to_json, series_to_csv};

/// A short instrumented baseline run that is guaranteed to produce
/// episodes (NN + canneal clogs; see tests/telemetry_integration.rs).
fn sampled_run() -> System {
    let mut cfg = SystemConfig::default().with_scheme(Scheme::Baseline);
    cfg.seed = 7;
    let mut sys = System::new(cfg, "NN", "canneal");
    sys.enable_telemetry(TelemetryConfig::default());
    sys.run(20_000);
    sys.finish_telemetry();
    sys
}

#[test]
fn session_json_round_trips_every_sampled_value() {
    let sys = sampled_run();
    let t = sys.telemetry().expect("telemetry enabled");
    let doc = t
        .session
        .to_json(&[("scheme", "baseline".into()), ("seed", "7".into())]);
    let v = Json::parse(&doc).expect("session JSON parses");

    // Meta strings survive.
    assert_eq!(
        v.get("meta").unwrap().get("scheme").unwrap().as_str(),
        Some("baseline")
    );

    // Every sampler series survives value-for-value, bit-exactly.
    let series = v.get("sampler").unwrap().get("series").unwrap();
    let mut seen = 0usize;
    for (name, values) in t.sampler().all_series() {
        let arr = series
            .get(name)
            .unwrap_or_else(|| panic!("series `{name}` missing from JSON"))
            .as_arr()
            .expect("series is an array");
        assert_eq!(arr.len(), values.len(), "series `{name}` length");
        for (i, (parsed, expected)) in arr.iter().zip(&values).enumerate() {
            let parsed = parsed.as_f64().expect("series value is a number");
            assert!(
                parsed.to_bits() == expected.to_bits(),
                "series `{name}`[{i}]: {parsed} != {expected}"
            );
        }
        seen += 1;
    }
    assert!(seen > 0, "the run sampled at least one series");
    assert_eq!(
        series.as_obj().unwrap().len(),
        seen,
        "JSON has no extra series"
    );

    // Epoch bookkeeping survives.
    let sampler = v.get("sampler").unwrap();
    assert_eq!(
        sampler.get("epochs").unwrap().as_u64(),
        Some(t.sampler().epochs_committed())
    );
    assert_eq!(sampler.get("epoch_len").unwrap().as_u64(), Some(500));

    // Every registry counter survives exactly.
    let counters = v.get("registry").unwrap().get("counters").unwrap();
    let mut n = 0usize;
    for (name, value) in t.session.registry.counters() {
        assert_eq!(
            counters.get(name).and_then(Json::as_u64),
            Some(value),
            "counter `{name}`"
        );
        n += 1;
    }
    assert_eq!(counters.as_obj().unwrap().len(), n);

    // Every gauge survives bit-exactly (non-finite exports as 0).
    let gauges = v.get("registry").unwrap().get("gauges").unwrap();
    for (name, value) in t.session.registry.gauges() {
        let expected = if value.is_finite() { value } else { 0.0 };
        let parsed = gauges.get(name).and_then(Json::as_f64).unwrap();
        assert!(
            parsed.to_bits() == expected.to_bits(),
            "gauge `{name}`: {parsed} != {expected}"
        );
    }

    // Episodes survive field-for-field.
    let eps_json = v.get("episodes").unwrap().as_arr().unwrap();
    let eps = t.session.episodes.episodes();
    assert!(!eps.is_empty(), "baseline NN+canneal must clog");
    assert_eq!(eps_json.len(), eps.len());
    for (j, e) in eps_json.iter().zip(eps) {
        assert_eq!(j.get("node").unwrap().as_u64(), Some(e.node as u64));
        assert_eq!(j.get("start").unwrap().as_u64(), Some(e.start));
        assert_eq!(j.get("end").unwrap().as_u64(), Some(e.end));
        assert_eq!(j.get("duration").unwrap().as_u64(), Some(e.duration()));
        assert_eq!(
            j.get("peak_depth").unwrap().as_u64(),
            Some(e.peak_depth as u64)
        );
        assert_eq!(j.get("flits_shed").unwrap().as_u64(), Some(e.flits_shed));
    }
}

#[test]
fn registry_json_round_trips_histogram_summaries() {
    let sys = sampled_run();
    let t = sys.telemetry().expect("telemetry enabled");
    let v = Json::parse(&registry_to_json(&t.session.registry)).unwrap();
    let hists = v.get("histograms").unwrap();
    let mut n = 0usize;
    for (name, h) in t.session.registry.histograms() {
        let j = hists
            .get(name)
            .unwrap_or_else(|| panic!("histogram `{name}` missing"));
        assert_eq!(j.get("count").unwrap().as_u64(), Some(h.count()));
        assert_eq!(j.get("sum").unwrap().as_u64(), Some(h.sum()));
        assert_eq!(j.get("min").unwrap().as_u64(), Some(h.min()));
        assert_eq!(j.get("max").unwrap().as_u64(), Some(h.max()));
        assert_eq!(j.get("p50").unwrap().as_u64(), Some(h.p50()));
        assert_eq!(j.get("p95").unwrap().as_u64(), Some(h.p95()));
        assert_eq!(j.get("p99").unwrap().as_u64(), Some(h.p99()));
        let mean = j.get("mean").unwrap().as_f64().unwrap();
        let expected = if h.mean().is_finite() { h.mean() } else { 0.0 };
        assert!(
            mean.to_bits() == expected.to_bits(),
            "histogram `{name}` mean"
        );
        n += 1;
    }
    assert_eq!(hists.as_obj().unwrap().len(), n);
}

#[test]
fn series_csv_round_trips_every_cell() {
    let sys = sampled_run();
    let t = sys.telemetry().expect("telemetry enabled");
    let sampler = t.sampler();
    let csv = series_to_csv(sampler);
    let mut lines = csv.lines();

    // Header: `epoch` then one column per series, in iteration order.
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    assert_eq!(header[0], "epoch");
    let series: Vec<(String, Vec<f64>)> = sampler
        .all_series()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    assert_eq!(header.len(), series.len() + 1);
    for (h, (name, _)) in header[1..].iter().zip(&series) {
        // None of the simulator's series names need CSV quoting.
        assert_eq!(h, name);
    }

    // Body: every cell parses back to the exact sampled value. A
    // series registered after epoch 0 is right-aligned; its missing
    // leading epochs are empty cells.
    let rows: Vec<Vec<&str>> = lines.map(|l| l.split(',').collect()).collect();
    let n_rows = rows.len();
    assert_eq!(n_rows, series.iter().map(|(_, v)| v.len()).max().unwrap());
    for (r, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), series.len() + 1, "row {r} arity");
        assert_eq!(
            row[0].parse::<u64>().unwrap(),
            sampler.first_epoch() + r as u64
        );
        for (cell, (name, values)) in row[1..].iter().zip(&series) {
            let pad = n_rows - values.len();
            if r < pad {
                assert!(cell.is_empty(), "series `{name}` row {r} should be padding");
            } else {
                let parsed: f64 = cell.parse().unwrap();
                assert!(
                    parsed.to_bits() == values[r - pad].to_bits(),
                    "series `{name}` row {r}: {parsed} != {}",
                    values[r - pad]
                );
            }
        }
    }
}

#[test]
fn episodes_ndjson_round_trips_line_by_line() {
    let sys = sampled_run();
    let t = sys.telemetry().expect("telemetry enabled");
    let eps = t.session.episodes.episodes();
    assert!(!eps.is_empty(), "baseline NN+canneal must clog");
    let nd = episodes_to_ndjson(eps);
    let lines: Vec<&str> = nd.lines().collect();
    assert_eq!(lines.len(), eps.len());
    for (line, e) in lines.iter().zip(eps) {
        let j = Json::parse(line).expect("each NDJSON line parses alone");
        assert_eq!(j.get("node").unwrap().as_u64(), Some(e.node as u64));
        assert_eq!(j.get("start").unwrap().as_u64(), Some(e.start));
        assert_eq!(j.get("end").unwrap().as_u64(), Some(e.end));
        assert_eq!(
            j.get("peak_depth").unwrap().as_u64(),
            Some(e.peak_depth as u64)
        );
        assert_eq!(j.get("flits_shed").unwrap().as_u64(), Some(e.flits_shed));
    }
}
