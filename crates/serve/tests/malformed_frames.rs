//! Adversarial wire input: truncated JSON, oversized lines, invalid
//! UTF-8, and assorted garbage must come back as *structured* error
//! replies — never a silent connection drop and never a panic. The
//! frame contract (DESIGN.md §10.1/§11.1): every complete line gets a
//! reply; only an oversized line (which cannot be resynchronized) may
//! close the connection, and even that is answered first.

use clognet_serve::server::{JobError, JobHandler, ServeConfig, Server};
use clognet_serve::wire::{ErrorCode, JobSpec, MAX_FRAME_BYTES};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Echo;

impl JobHandler for Echo {
    fn fingerprint(&self, spec: &JobSpec) -> Result<u64, JobError> {
        Ok(spec.cycles)
    }
    fn run(&self, spec: &JobSpec, _deadline: Instant) -> Result<String, JobError> {
        Ok(format!("{{\"gpu\":\"{}\"}}", spec.gpu))
    }
}

fn boot() -> (String, clognet_serve::ServerHandle) {
    let server = Server::bind(ServeConfig::default(), Arc::new(Echo)).expect("bind");
    let addr = server.local_addr().to_string();
    (addr, server.spawn().expect("spawn"))
}

fn shutdown(addr: &str, handle: clognet_serve::ServerHandle) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let mut r = BufReader::new(s);
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    handle.join().unwrap();
}

/// Send raw bytes, read one reply line.
fn raw_round_trip(stream: &mut TcpStream, bytes: &[u8]) -> String {
    stream.write_all(bytes).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line
}

fn assert_bad_request(reply: &str) {
    match clognet_serve::wire::parse_response(reply.trim()).expect("reply decodes") {
        clognet_serve::wire::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadRequest, "reply: {reply}");
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
}

#[test]
fn truncated_and_invalid_json_lines_get_structured_errors() {
    let (addr, handle) = boot();
    let mut stream = TcpStream::connect(&addr).unwrap();

    // Each malformed line is answered in order on the SAME connection —
    // proving none of them tore it down.
    for bad in [
        "{\"op\":\"run\",\"gpu\":\n",     // truncated mid-object
        "{\"op\": \n",                    // truncated mid-key
        "[1,2,\n",                        // truncated array
        "not json at all\n",              // garbage
        "{\"op\":\"run\",\"warm\":-1}\n", // valid JSON, invalid field
        "{\"op\":\"run\",\"gpu\":3}\n",   // wrong field type
        "\"just a string\"\n",            // wrong top-level type
        "{}\n",                           // missing op
    ] {
        assert_bad_request(&raw_round_trip(&mut stream, bad.as_bytes()));
    }

    // The connection still works for a well-formed request afterwards.
    let reply = raw_round_trip(&mut stream, b"{\"op\":\"ping\"}\n");
    assert!(reply.contains("\"ok\":true"), "reply: {reply}");

    drop(stream);
    shutdown(&addr, handle);
}

#[test]
fn invalid_utf8_is_answered_and_the_connection_survives() {
    let (addr, handle) = boot();
    let mut stream = TcpStream::connect(&addr).unwrap();

    assert_bad_request(&raw_round_trip(&mut stream, b"{\"op\":\xff\xfe\"}\n"));
    let reply = raw_round_trip(&mut stream, b"{\"op\":\"ping\"}\n");
    assert!(reply.contains("\"ok\":true"), "reply: {reply}");

    drop(stream);
    shutdown(&addr, handle);
}

#[test]
fn oversized_frames_are_answered_then_the_connection_closes() {
    let (addr, handle) = boot();
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // A newline-free line exactly one byte past the cap. Exactly, so
    // the server consumes every byte we send: leftover unread data at
    // close would RST the socket instead of delivering a clean EOF.
    let chunk = vec![b'x'; 64 * 1024];
    let mut remaining = MAX_FRAME_BYTES + 1;
    while remaining > 0 {
        let n = remaining.min(chunk.len());
        stream.write_all(&chunk[..n]).unwrap();
        remaining -= n;
    }
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_bad_request(&line);
    assert!(
        line.contains("exceeds"),
        "error names the frame cap: {line}"
    );

    // After the structured reply the server closes: EOF, not a hang.
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).unwrap();
    assert_eq!(n, 0, "connection closed after the oversized reply");

    drop(stream);
    shutdown(&addr, handle);
}

#[test]
fn frames_at_the_cap_with_a_newline_still_parse() {
    let (addr, handle) = boot();
    let mut stream = TcpStream::connect(&addr).unwrap();

    // A large-but-legal frame: padding via a long (rejected) option
    // value proves size alone is not grounds for closing.
    let padding = "p".repeat(1024 * 1024);
    let frame = format!("{{\"op\":\"run\",\"bogus\":\"{padding}\"}}\n");
    assert!(frame.len() <= MAX_FRAME_BYTES);
    let reply = raw_round_trip(&mut stream, frame.as_bytes());
    // Echo accepts any spec, so this big frame is simply served.
    assert!(reply.contains("\"ok\""), "reply: {reply}");
    let reply = raw_round_trip(&mut stream, b"{\"op\":\"ping\"}\n");
    assert!(reply.contains("\"ok\":true"), "reply: {reply}");

    drop(stream);
    shutdown(&addr, handle);
}
