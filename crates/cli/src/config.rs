//! Translate CLI options into a [`SystemConfig`].

use crate::args::{Args, ParseArgsError};
use clognet_proto::{
    ControlConfig, ControlPolicyKind, CtaSched, FabricConfig, FabricInterleave, FabricTopology,
    L1Org, LayoutKind, RoutingPolicy, Scheme, SystemConfig, Topology, VirtualNetConfig,
};

/// Options shared by `run`, `compare`, and `sweep`.
pub const CONFIG_KEYS: [&str; 29] = [
    "gpu",
    "cpu",
    "scheme",
    "layout",
    "topology",
    "routing",
    "width",
    "l1org",
    "cta",
    "vnets",
    "seed",
    "mesh",
    "injbuf",
    "chips",
    "fabric-topology",
    "fabric-width",
    "fabric-latency",
    "fabric-queue",
    "fabric-gateways",
    "fabric-interleave",
    "fabric-reply-width",
    "fabric-reply-latency",
    "control",
    "control-interval",
    "control-enter",
    "control-exit",
    "control-enter-episode",
    "control-exit-episode",
    "control-dwell",
];

/// The fabric subset of [`CONFIG_KEYS`] (every one an identity knob —
/// see the fingerprint tests in `clognet-proto`).
pub const FABRIC_KEYS: [&str; 9] = [
    "chips",
    "fabric-topology",
    "fabric-width",
    "fabric-latency",
    "fabric-queue",
    "fabric-gateways",
    "fabric-interleave",
    "fabric-reply-width",
    "fabric-reply-latency",
];

/// The adaptive-control subset of [`CONFIG_KEYS`] (every one an
/// identity knob — see the fingerprint tests in `clognet-proto`).
pub const CONTROL_KEYS: [&str; 7] = [
    "control",
    "control-interval",
    "control-enter",
    "control-exit",
    "control-enter-episode",
    "control-exit-episode",
    "control-dwell",
];

/// Parse a scheme name.
///
/// # Errors
///
/// Unknown scheme names.
pub fn parse_scheme(s: &str) -> Result<Scheme, ParseArgsError> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" | "base" => Ok(Scheme::Baseline),
        "dr" | "delegated" | "delegated-replies" => Ok(Scheme::DelegatedReplies),
        "rp" | "realistic-probing" => Ok(Scheme::rp_default()),
        other => {
            if let Some(f) = other.strip_prefix("rp:") {
                let fanout = f
                    .parse()
                    .map_err(|_| ParseArgsError(format!("bad RP fanout `{f}`")))?;
                Ok(Scheme::RealisticProbing { fanout })
            } else {
                Err(ParseArgsError(format!(
                    "unknown scheme `{other}` (baseline | dr | rp | rp:<fanout>)"
                )))
            }
        }
    }
}

/// Parse a layout name.
///
/// # Errors
///
/// Unknown layout names.
pub fn parse_layout(s: &str) -> Result<LayoutKind, ParseArgsError> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" | "a" => Ok(LayoutKind::Baseline),
        "b" | "edge" => Ok(LayoutKind::EdgeB),
        "c" | "clustered" => Ok(LayoutKind::ClusteredC),
        "d" | "distributed" => Ok(LayoutKind::DistributedD),
        other => Err(ParseArgsError(format!(
            "unknown layout `{other}` (a|b|c|d)"
        ))),
    }
}

/// Build a [`SystemConfig`] from the parsed arguments.
///
/// # Errors
///
/// Any unparseable option.
pub fn config_from(args: &Args) -> Result<SystemConfig, ParseArgsError> {
    let mut cfg = SystemConfig::default();
    if let Some(s) = args.get("scheme") {
        cfg.scheme = parse_scheme(s)?;
    }
    if let Some(s) = args.get("layout") {
        cfg.layout = parse_layout(s)?;
        let (req, rep) = SystemConfig::best_routing_for(cfg.layout);
        cfg.noc.routing_request = req;
        cfg.noc.routing_reply = rep;
    }
    if let Some(s) = args.get("topology") {
        cfg.noc.topology = match s.to_ascii_lowercase().as_str() {
            "mesh" => Topology::Mesh,
            "crossbar" | "xbar" => Topology::Crossbar,
            "fbfly" | "flattened-butterfly" => Topology::FlattenedButterfly,
            "dragonfly" => Topology::Dragonfly,
            other => {
                return Err(ParseArgsError(format!(
                    "unknown topology `{other}` (mesh|crossbar|fbfly|dragonfly)"
                )))
            }
        };
        if cfg.noc.topology != Topology::Mesh {
            cfg.noc.routing_request = RoutingPolicy::DorXY;
            cfg.noc.routing_reply = RoutingPolicy::DorXY;
        }
    }
    if let Some(s) = args.get("routing") {
        let pol = |p: &str| -> Result<RoutingPolicy, ParseArgsError> {
            match p.to_ascii_lowercase().as_str() {
                "xy" => Ok(RoutingPolicy::DorXY),
                "yx" => Ok(RoutingPolicy::DorYX),
                "dyxy" => Ok(RoutingPolicy::DyXY),
                "footprint" => Ok(RoutingPolicy::Footprint),
                "hare" => Ok(RoutingPolicy::Hare),
                other => Err(ParseArgsError(format!("unknown routing `{other}`"))),
            }
        };
        let (req, rep) = s
            .split_once('-')
            .ok_or_else(|| ParseArgsError("routing must be <req>-<rep>, e.g. yx-xy".into()))?;
        cfg.noc.routing_request = pol(req)?;
        cfg.noc.routing_reply = pol(rep)?;
    }
    if let Some(w) = args.get("width") {
        cfg.noc.channel_bytes = w
            .parse()
            .map_err(|_| ParseArgsError(format!("bad channel width `{w}`")))?;
    }
    if let Some(s) = args.get("l1org") {
        cfg.l1_org = match s.to_ascii_lowercase().as_str() {
            "private" => L1Org::Private,
            "dcl1" | "dc-l1" => L1Org::DcL1,
            "dyneb" => L1Org::DynEB,
            other => return Err(ParseArgsError(format!("unknown l1org `{other}`"))),
        };
    }
    if let Some(s) = args.get("cta") {
        cfg.cta_sched = match s.to_ascii_lowercase().as_str() {
            "rr" | "round-robin" => CtaSched::RoundRobin,
            "dist" | "distributed" => CtaSched::Distributed,
            other => return Err(ParseArgsError(format!("unknown cta policy `{other}`"))),
        };
    }
    if let Some(v) = args.get("vnets") {
        let (rq, rp) = v
            .split_once('+')
            .ok_or_else(|| ParseArgsError("vnets must be <reqVCs>+<repVCs>, e.g. 2+2".into()))?;
        cfg.noc.virtual_nets = Some(VirtualNetConfig {
            request_vcs: rq
                .parse()
                .map_err(|_| ParseArgsError(format!("bad vnets `{v}`")))?,
            reply_vcs: rp
                .parse()
                .map_err(|_| ParseArgsError(format!("bad vnets `{v}`")))?,
        });
    }
    if let Some(m) = args.get("mesh") {
        let (w, h) = m
            .split_once('x')
            .ok_or_else(|| ParseArgsError("mesh must be <w>x<h>, e.g. 10x10".into()))?;
        let w: usize = w
            .parse()
            .map_err(|_| ParseArgsError(format!("bad mesh `{m}`")))?;
        let h: usize = h
            .parse()
            .map_err(|_| ParseArgsError(format!("bad mesh `{m}`")))?;
        cfg.mesh_width = w;
        cfg.mesh_height = h;
        cfg.n_mem = h;
        cfg.n_cpu = 2 * h;
        cfg.n_gpu = w * h - 3 * h;
    }
    cfg.seed = args.get_num("seed", cfg.seed)?;
    cfg.noc.mem_inj_buf_pkts = args.get_num("injbuf", cfg.noc.mem_inj_buf_pkts)?;
    if cfg.noc.mem_inj_buf_pkts == 0 {
        return Err(ParseArgsError("--injbuf must be at least 1".into()));
    }
    apply_fabric(args, &mut cfg)?;
    apply_control(args, &mut cfg)?;
    Ok(cfg)
}

/// Fold the `--chips` / `--fabric-*` options into `cfg.fabric`. Any
/// fabric option present switches the config to an explicit
/// [`FabricConfig`] (defaults filled in); `--chips 1` alone keeps the
/// plain single-chip config (`fabric: None`), byte-identical to builds
/// that never mention the fabric.
fn apply_fabric(args: &Args, cfg: &mut SystemConfig) -> Result<(), ParseArgsError> {
    if !FABRIC_KEYS.iter().any(|k| args.get(k).is_some()) {
        return Ok(());
    }
    let d = FabricConfig::default();
    let chips = args.get_num("chips", d.chips)?;
    if chips == 1 {
        if FABRIC_KEYS[1..].iter().any(|k| args.get(k).is_some()) {
            return Err(ParseArgsError(
                "--fabric-* options require --chips 2 or more".into(),
            ));
        }
        cfg.fabric = None;
        return Ok(());
    }
    let topology = match args.get("fabric-topology") {
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "pair" => FabricTopology::Pair,
            "ring" => FabricTopology::Ring,
            "all" | "full" => FabricTopology::All,
            other => {
                return Err(ParseArgsError(format!(
                    "unknown fabric topology `{other}` (pair|ring|all)"
                )))
            }
        },
        // The pair default only spans two chips; larger packages get a
        // ring unless told otherwise.
        None if chips > 2 => FabricTopology::Ring,
        None => d.topology,
    };
    let interleave = match args.get("fabric-interleave") {
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "hash" => FabricInterleave::Hash,
            "modulo" | "mod" => FabricInterleave::Modulo,
            other => {
                return Err(ParseArgsError(format!(
                    "unknown fabric interleave `{other}` (hash|modulo)"
                )))
            }
        },
        None => d.interleave,
    };
    cfg.fabric = Some(FabricConfig {
        chips,
        topology,
        interleave,
        link_flits: args.get_num("fabric-width", d.link_flits)?,
        hop_latency: args.get_num("fabric-latency", d.hop_latency)?,
        queue_pkts: args.get_num("fabric-queue", d.queue_pkts)?,
        gateways: args.get_num("fabric-gateways", d.gateways)?,
        reply_link_flits: args.get_num("fabric-reply-width", d.reply_link_flits)?,
        reply_hop_latency: args.get_num("fabric-reply-latency", d.reply_hop_latency)?,
    });
    Ok(())
}

/// Fold the `--control*` options into `cfg.control`, mirroring
/// [`apply_fabric`]: `--control <policy>` switches the adaptive loop on
/// (threshold defaults filled in from [`ControlConfig::default`]);
/// `--control none` keeps the static config (`control: None`),
/// byte-identical to builds that never mention the controller.
fn apply_control(args: &Args, cfg: &mut SystemConfig) -> Result<(), ParseArgsError> {
    if !CONTROL_KEYS.iter().any(|k| args.get(k).is_some()) {
        return Ok(());
    }
    let thresholds_given = CONTROL_KEYS[1..].iter().any(|k| args.get(k).is_some());
    let policy = match args.get("control") {
        None => {
            return Err(ParseArgsError(
                "--control-* options require --control noop|hysteresis".into(),
            ))
        }
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "none" | "off" => {
                if thresholds_given {
                    return Err(ParseArgsError(
                        "--control-* options require --control noop|hysteresis".into(),
                    ));
                }
                cfg.control = None;
                return Ok(());
            }
            "noop" | "no-op" => ControlPolicyKind::NoOp,
            "hysteresis" | "adaptive" => ControlPolicyKind::Hysteresis,
            other => {
                return Err(ParseArgsError(format!(
                    "unknown control policy `{other}` (none|noop|hysteresis)"
                )))
            }
        },
    };
    let d = ControlConfig::default();
    let interval = args.get_num("control-interval", d.interval)?;
    if interval == 0 {
        return Err(ParseArgsError(
            "--control-interval must be at least 1".into(),
        ));
    }
    let enter_blocked_pm = args.get_num("control-enter", d.enter_blocked_pm)?;
    let exit_blocked_pm = args.get_num("control-exit", d.exit_blocked_pm)?;
    if exit_blocked_pm > enter_blocked_pm {
        return Err(ParseArgsError(format!(
            "--control-exit {exit_blocked_pm} must not exceed --control-enter \
             {enter_blocked_pm} (hysteresis needs exit <= enter)"
        )));
    }
    cfg.control = Some(ControlConfig {
        policy,
        interval,
        enter_blocked_pm,
        exit_blocked_pm,
        enter_episode: args.get_num("control-enter-episode", d.enter_episode)?,
        exit_episode: args.get_num("control-exit-episode", d.exit_episode)?,
        dwell: args.get_num("control-dwell", d.dwell)?,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn scheme_names() {
        assert_eq!(parse_scheme("dr").unwrap(), Scheme::DelegatedReplies);
        assert_eq!(parse_scheme("baseline").unwrap(), Scheme::Baseline);
        assert_eq!(
            parse_scheme("rp:7").unwrap(),
            Scheme::RealisticProbing { fanout: 7 }
        );
        assert!(parse_scheme("nope").is_err());
    }

    #[test]
    fn full_config_line() {
        let a = parse(
            "run --scheme dr --layout b --routing xy-yx --width 32 --l1org dyneb \
             --cta dist --vnets 1+3 --seed 9 --mesh 10x10",
        );
        let c = config_from(&a).unwrap();
        assert_eq!(c.scheme, Scheme::DelegatedReplies);
        assert_eq!(c.layout, LayoutKind::EdgeB);
        assert_eq!(c.noc.routing_request, RoutingPolicy::DorXY);
        assert_eq!(c.noc.routing_reply, RoutingPolicy::DorYX);
        assert_eq!(c.noc.channel_bytes, 32);
        assert_eq!(c.l1_org, L1Org::DynEB);
        assert_eq!(c.cta_sched, CtaSched::Distributed);
        assert_eq!(c.noc.virtual_nets.unwrap().reply_vcs, 3);
        assert_eq!(c.seed, 9);
        assert_eq!((c.mesh_width, c.n_gpu, c.n_cpu, c.n_mem), (10, 70, 20, 10));
    }

    #[test]
    fn layout_sets_best_routing() {
        let c = config_from(&parse("run --layout d")).unwrap();
        assert_eq!(c.noc.routing_request, RoutingPolicy::DorXY);
        assert_eq!(c.noc.routing_reply, RoutingPolicy::DorXY);
    }

    #[test]
    fn bad_values_error() {
        assert!(config_from(&parse("run --topology torus")).is_err());
        assert!(config_from(&parse("run --vnets 22")).is_err());
        assert!(config_from(&parse("run --mesh big")).is_err());
        assert!(config_from(&parse("run --routing diagonal")).is_err());
        assert!(config_from(&parse("run --injbuf 0")).is_err());
    }

    #[test]
    fn injbuf_retargets_the_injection_buffer() {
        let c = config_from(&parse("run --injbuf 4")).unwrap();
        assert_eq!(c.noc.mem_inj_buf_pkts, 4);
        let d = config_from(&parse("run")).unwrap();
        assert_eq!(
            d.noc.mem_inj_buf_pkts,
            SystemConfig::default().noc.mem_inj_buf_pkts
        );
    }

    #[test]
    fn control_defaults_to_none_and_switches_on_explicitly() {
        assert_eq!(config_from(&parse("run")).unwrap().control, None);
        assert_eq!(
            config_from(&parse("run --control none")).unwrap().control,
            None
        );
        let c = config_from(&parse("run --control hysteresis")).unwrap();
        assert_eq!(c.control, Some(ControlConfig::default()));
        let c = config_from(&parse("run --control noop")).unwrap();
        assert_eq!(c.control.unwrap().policy, ControlPolicyKind::NoOp);
    }

    #[test]
    fn control_thresholds_override_the_defaults() {
        let c = config_from(&parse(
            "run --control hysteresis --control-interval 250 --control-enter 400 \
             --control-exit 10 --control-enter-episode 800 --control-exit-episode 1600 \
             --control-dwell 3",
        ))
        .unwrap();
        let ctl = c.control.unwrap();
        assert_eq!(ctl.interval, 250);
        assert_eq!(ctl.enter_blocked_pm, 400);
        assert_eq!(ctl.exit_blocked_pm, 10);
        assert_eq!(ctl.enter_episode, 800);
        assert_eq!(ctl.exit_episode, 1600);
        assert_eq!(ctl.dwell, 3);
    }

    #[test]
    fn degenerate_control_combinations_error() {
        // Threshold knobs without a policy, or alongside an explicit
        // `none`, are contradictions, not silent defaults.
        assert!(config_from(&parse("run --control-interval 100")).is_err());
        assert!(config_from(&parse("run --control none --control-dwell 1")).is_err());
        assert!(config_from(&parse("run --control bogus")).is_err());
        assert!(config_from(&parse("run --control hysteresis --control-interval 0")).is_err());
        // An exit threshold above the enter threshold inverts the
        // hysteresis band.
        assert!(config_from(&parse(
            "run --control hysteresis --control-enter 100 --control-exit 200"
        ))
        .is_err());
    }
}
