//! `clognet` — command-line driver for the clognet heterogeneous-
//! architecture simulator (a reproduction of *Delegated Replies*,
//! HPCA 2022).
//!
//! ```text
//! clognet run      --gpu HS --cpu bodytrack --scheme dr [--cycles N] [--warm N]
//!                  [--metrics out.json] [--csv out.csv] [--sample N] [--json] ...
//! clognet compare  --gpu HS --cpu bodytrack [--threads N] [--warm-from fork] [--json]
//! clognet sweep    --param width --values 8,16,24 [--threads N] [--warm-from fork] ...
//! clognet snapshot --gpu HS --cpu bodytrack --warm N --out snap.bin  # warm once, save
//! clognet resume   --from snap.bin --cycles N [--scheme dr] [--set injbuf=4,drmax=1]
//! clognet bench    [--threads N] [--quick] [--warm-start] [--out BENCH_x.json]
//! clognet timeline --gpu NN --cpu canneal --scheme baseline     # ASCII clog timeline
//! clognet trace    --gpu HS --cpu bodytrack [--last N] [--kind k]  # protocol events
//! clognet fuzz     [--seed N] [--cases N]    # seeded engine-equivalence fuzzing
//! clognet serve    [--addr HOST:PORT] [--workers N] [--queue N]  # persistent service
//! clognet cluster  --addr H:P --peers H:P,... [--replicas N]  # sharded service node
//! clognet cluster-bench [--nodes N] [--quick] [--out BENCH_cluster.json]
//! clognet submit   [--addr HOST:PORT] [--peers H:P,...] [--op run|ping|stats|cluster-stats|shutdown]
//! clognet batch    --file jobs.ndjson [--addr HOST:PORT] [--out r.ndjson]
//! clognet fingerprint [--canonical] [--peers H:P,... [--owner]] [job opts]
//! clognet list                                          # benchmarks & options
//! clognet help
//! ```

use clognet_bench::runner::default_threads;
use clognet_cli::args::{Args, ParseArgsError};
use clognet_cli::config::{config_from, CONFIG_KEYS};
use clognet_cli::{cluster_cmd, driver, fuzz_cmd, report, serve_cmd, timeline};
use clognet_core::{DecisionLog, MultiChipSystem, System, TelemetryConfig, TickEngine};
use clognet_proto::{Scheme, SystemConfig};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match dispatch(raw) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn dispatch(raw: Vec<String>) -> Result<(), ParseArgsError> {
    if raw.is_empty() {
        print_help();
        return Ok(());
    }
    let args = Args::parse(raw)?;
    match args.command.as_str() {
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "sweep" => cmd_sweep(&args),
        "bench" => cmd_bench(&args),
        "snapshot" => cmd_snapshot(&args),
        "resume" => cmd_resume(&args),
        "timeline" => cmd_timeline(&args),
        "trace" => cmd_trace(&args),
        "fuzz" => fuzz_cmd::cmd_fuzz(&args),
        "serve" => serve_cmd::cmd_serve(&args),
        "cluster" => cluster_cmd::cmd_cluster(&args),
        "cluster-bench" => cluster_cmd::cmd_cluster_bench(&args),
        "submit" => serve_cmd::cmd_submit(&args),
        "batch" => serve_cmd::cmd_batch(&args),
        "fingerprint" => serve_cmd::cmd_fingerprint(&args),
        "list" => {
            cmd_list();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(ParseArgsError(format!(
            "unknown command `{other}`; try `clognet help`"
        ))),
    }
}

fn run_keys() -> Vec<&'static str> {
    let mut keys = CONFIG_KEYS.to_vec();
    keys.extend_from_slice(&["cycles", "warm", "no-ff", "shards"]);
    keys
}

/// Intra-run shard count from `--shards` (default 1 = the sequential
/// engine), validated against the configured topology up front so a
/// count that cannot partition the mesh fails with a clear message
/// before any simulation is built.
fn shard_count(args: &Args, cfg: &SystemConfig) -> Result<usize, ParseArgsError> {
    let n = args.get_num("shards", 1usize)?;
    clognet_core::validate_shards(cfg, n).map_err(|e| ParseArgsError(format!("--shards: {e}")))?;
    Ok(n)
}

/// Apply a validated `--shards` count to a freshly built package.
fn apply_shards(sys: &mut MultiChipSystem, shards: usize) {
    if shards > 1 {
        sys.set_tick_engine(TickEngine::Sharded(shards))
            .expect("shard count validated against this config");
    }
}

/// Validate the `--chips` / `--fabric-*` combination up front, exactly
/// like [`shard_count`] does for `--shards`.
fn check_fabric(cfg: &SystemConfig) -> Result<(), ParseArgsError> {
    clognet_core::validate_fabric(cfg).map_err(|e| ParseArgsError(format!("--chips/--fabric: {e}")))
}

/// Telemetry epoch length from `--sample` (default 500 cycles).
fn sample_len(args: &Args) -> Result<u64, ParseArgsError> {
    let n = args.get_num("sample", 500u64)?;
    if n == 0 {
        return Err(ParseArgsError("--sample must be at least 1".into()));
    }
    Ok(n)
}

/// Telemetry session config from `--sample` plus the episode-detector
/// thresholds `--episode-enter` (minimum episode duration in cycles)
/// and `--episode-exit` (re-block merge gap in cycles). Both default
/// to 0 — record every blocked interval, the historical fold.
fn telemetry_config(args: &Args) -> Result<TelemetryConfig, ParseArgsError> {
    Ok(TelemetryConfig {
        epoch_len: sample_len(args)?,
        episode_min_duration: args.get_num("episode-enter", 0u64)?,
        episode_merge_gap: args.get_num("episode-exit", 0u64)?,
        ..TelemetryConfig::default()
    })
}

/// Print a package's adaptive-control decision logs after a run. Human
/// output gets the scheme switches on stdout; `--json` keeps stdout
/// byte-identical to an uncontrolled report (and to what `submit`
/// prints for the same job), so the summary goes to stderr.
fn print_decision_logs(logs: &[(usize, &DecisionLog)], chips: usize, json: bool) {
    for (chip, log) in logs {
        let label = if chips > 1 {
            format!("chip {chip} ")
        } else {
            String::new()
        };
        let summary = format!(
            "{label}control: {} decisions ({} escalations, {} de-escalations)",
            log.len(),
            log.escalations(),
            log.de_escalations()
        );
        if json {
            eprintln!("{summary}");
            continue;
        }
        println!("{summary}");
        for d in log.entries().iter().filter(|d| d.from_level != d.to_level) {
            println!(
                "  cycle {:>8}: {} level {} -> {} (blocked {}‰, streak {} cy, \
                 inj depth {}, shed {} flits)",
                d.cycle,
                d.action.label(),
                d.from_level,
                d.to_level,
                d.max_blocked_pm,
                d.hot_streak,
                d.max_inj_depth,
                d.shed_delta
            );
        }
    }
}

/// Worker threads from `--threads` (default: available parallelism, or
/// `CLOGNET_THREADS`).
fn thread_count(args: &Args) -> Result<usize, ParseArgsError> {
    let n = args.get_num("threads", default_threads())?;
    if n == 0 {
        return Err(ParseArgsError("--threads must be at least 1".into()));
    }
    Ok(n)
}

fn cmd_run(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = run_keys();
    keys.extend_from_slice(&[
        "metrics",
        "csv",
        "sample",
        "json",
        "snapshot-every",
        "snapshot-out",
        "episode-enter",
        "episode-exit",
    ]);
    args.reject_unknown(&keys)?;
    args.reject_conflicts(&[("json", "csv")])?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 6_000u64)?;
    let cycles = args.get_num("cycles", 15_000u64)?;
    let cfg = config_from(args)?;
    check_fabric(&cfg)?;
    let scheme = cfg.scheme;
    let metrics_path = args.get("metrics");
    let csv_path = args.get("csv");
    let want_telemetry = metrics_path.is_some()
        || csv_path.is_some()
        || args.get("sample").is_some()
        || args.get("episode-enter").is_some()
        || args.get("episode-exit").is_some();
    let snap_every = match args.get("snapshot-every") {
        None => None,
        Some(_) => {
            let n = args.get_num("snapshot-every", 0u64)?;
            if n == 0 {
                return Err(ParseArgsError("--snapshot-every must be at least 1".into()));
            }
            Some(n)
        }
    };
    if args.get("snapshot-out").is_some() && snap_every.is_none() {
        return Err(ParseArgsError(
            "--snapshot-out needs --snapshot-every <cycles>".into(),
        ));
    }
    let shards = shard_count(args, &cfg)?;
    let mut sys = MultiChipSystem::new(cfg, gpu, cpu);
    sys.set_fast_forward(!args.flag("no-ff"));
    apply_shards(&mut sys, shards);
    if want_telemetry {
        sys.enable_telemetry(telemetry_config(args)?);
    }
    sys.run(warm);
    sys.reset_stats();
    if let Some(every) = snap_every {
        // Periodic snapshots across the measured span: the run pauses
        // at each multiple of `every` (plus the end) and writes the
        // full system state where `clognet resume` can pick it up.
        let prefix = args.get_or("snapshot-out", "clognet");
        let mut done = 0;
        while done < cycles {
            let step = every.min(cycles - done);
            sys.run(step);
            done += step;
            let path = format!("{prefix}-{:010}.snap", sys.now());
            std::fs::write(&path, sys.snapshot().as_bytes())
                .map_err(|e| ParseArgsError(format!("writing {path}: {e}")))?;
            eprintln!("wrote snapshot at cycle {} to {path}", sys.now());
        }
    } else {
        sys.run(cycles);
    }
    let r = sys.report();
    if args.flag("json") {
        println!("{}", report::report_json(scheme, &r));
    } else {
        report::print_report(scheme, &r);
    }
    print_decision_logs(
        &sys.decision_logs(),
        sys.config().chips(),
        args.flag("json"),
    );
    if let Some(path) = metrics_path {
        let doc = sys.export_metrics_json().expect("telemetry enabled");
        write_file(path, &doc)?;
        eprintln!("wrote metrics to {path}");
    }
    if let Some(path) = csv_path {
        let doc = sys.export_series_csv().expect("telemetry enabled");
        write_file(path, &doc)?;
        eprintln!("wrote per-epoch series to {path}");
    }
    Ok(())
}

fn write_file(path: &str, contents: &str) -> Result<(), ParseArgsError> {
    std::fs::write(path, contents).map_err(|e| ParseArgsError(format!("writing {path}: {e}")))
}

fn cmd_timeline(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = run_keys();
    keys.extend_from_slice(&[
        "sample",
        "width-cols",
        "metrics",
        "episode-enter",
        "episode-exit",
    ]);
    args.reject_unknown(&keys)?;
    let gpu = args.get_or("gpu", "NN");
    let cpu = args.get_or("cpu", "canneal");
    let warm = args.get_num("warm", 2_000u64)?;
    let cycles = args.get_num("cycles", 20_000u64)?;
    let cols = args.get_num("width-cols", 72usize)?;
    let cfg = config_from(args)?;
    check_fabric(&cfg)?;
    let scheme = cfg.scheme;
    let shards = shard_count(args, &cfg)?;
    let mut sys = MultiChipSystem::new(cfg, gpu, cpu);
    sys.set_fast_forward(!args.flag("no-ff"));
    apply_shards(&mut sys, shards);
    sys.enable_telemetry(telemetry_config(args)?);
    sys.run(warm + cycles);
    sys.finish_telemetry();
    let t = sys.telemetry().expect("telemetry enabled");
    println!(
        "{gpu} + {cpu} under {} — per-epoch clog timeline\n",
        scheme.label()
    );
    print!(
        "{}",
        timeline::render(
            t.sampler(),
            t.session.episodes.episodes(),
            t.session.config.epoch_len,
            cols,
        )
    );
    if let Some(path) = args.get("metrics") {
        let doc = sys.export_metrics_json().expect("telemetry enabled");
        write_file(path, &doc)?;
        eprintln!("wrote metrics to {path}");
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = run_keys();
    keys.extend_from_slice(&["json", "threads", "warm-from"]);
    args.reject_unknown(&keys)?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 6_000u64)?;
    let cycles = args.get_num("cycles", 15_000u64)?;
    let threads = thread_count(args)?;
    if !args.flag("json") {
        println!("comparing schemes on {gpu}+{cpu} ({warm} warm + {cycles} measured cycles)\n");
    }
    let base = config_from(args)?;
    check_fabric(&base)?;
    let shards = shard_count(args, &base)?;
    let rows = match args.get("warm-from") {
        Some(mode) => {
            if shards > 1 || args.flag("no-ff") {
                return Err(ParseArgsError(
                    "--warm-from composes with neither --shards nor --no-ff; \
                     engine modes never change results, so drop them"
                        .into(),
                ));
            }
            let mode = driver::parse_warm_start(mode);
            driver::run_compare_warm(&base, gpu, cpu, warm, cycles, threads, &mode)?
        }
        None => driver::run_compare(
            &base,
            gpu,
            cpu,
            warm,
            cycles,
            threads,
            !args.flag("no-ff"),
            shards,
        ),
    };
    if args.flag("json") {
        print!("{}", report::comparison_json(&rows));
    } else {
        report::print_comparison(&rows);
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = run_keys();
    keys.extend_from_slice(&["param", "values", "json", "threads", "warm-from"]);
    args.reject_unknown(&keys)?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 6_000u64)?;
    let cycles = args.get_num("cycles", 15_000u64)?;
    let threads = thread_count(args)?;
    let param = args
        .get("param")
        .ok_or_else(|| ParseArgsError(format!("sweep needs --param ({})", driver::SWEEP_PARAMS)))?;
    let values = driver::parse_sweep_values(
        args.get("values")
            .ok_or_else(|| ParseArgsError("sweep needs --values v1,v2,...".into()))?,
    )?;
    if !matches!(param, "width" | "l1kb" | "llcmb" | "injbuf" | "drmax") {
        return Err(ParseArgsError(format!(
            "unknown sweep param `{param}` ({})",
            driver::SWEEP_PARAMS
        )));
    }
    if !args.flag("json") {
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>13} {:>11}",
            param, "base IPC", "DR IPC", "DR/base", "base blocked%", "DR blocked%"
        );
    }
    let base = config_from(args)?;
    check_fabric(&base)?;
    // Sweep parameters never resize the mesh, so one validation against
    // the base config covers every point.
    let shards = shard_count(args, &base)?;
    let points = match args.get("warm-from") {
        Some(mode) => {
            if shards > 1 || args.flag("no-ff") {
                return Err(ParseArgsError(
                    "--warm-from composes with neither --shards nor --no-ff; \
                     engine modes never change results, so drop them"
                        .into(),
                ));
            }
            let mode = driver::parse_warm_start(mode);
            driver::run_sweep_warm(
                &base, param, &values, gpu, cpu, warm, cycles, threads, &mode,
            )?
        }
        None => driver::run_sweep(
            &base,
            param,
            &values,
            gpu,
            cpu,
            warm,
            cycles,
            threads,
            !args.flag("no-ff"),
            shards,
        )?,
    };
    for p in &points {
        if args.flag("json") {
            // One NDJSON object per sweep point: both scheme reports.
            println!("{}", driver::sweep_point_json(param, p));
        } else {
            println!(
                "{:<10} {:>10.2} {:>10.2} {:>10.3} {:>12.1}% {:>10.1}%",
                p.value,
                p.baseline.gpu_ipc,
                p.dr.gpu_ipc,
                p.dr.gpu_ipc / p.baseline.gpu_ipc,
                p.baseline.mem_blocked_rate * 100.0,
                p.dr.mem_blocked_rate * 100.0
            );
        }
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), ParseArgsError> {
    args.reject_unknown(&[
        "threads",
        "quick",
        "warm",
        "cycles",
        "out",
        "json",
        "shards",
        "warm-start",
        "fabric",
        "adaptive",
    ])?;
    // `--warm-start` switches to the snapshot-fork harness: the same
    // warm-started sweep timed cold vs forked. Its defaults make the
    // warmup dominate (the budget forking reclaims), so they differ
    // from the throughput matrix's.
    if args.flag("warm-start") {
        let (dwarm, dcycles) = if args.flag("quick") {
            (2_000u64, 600u64)
        } else {
            (20_000, 4_000)
        };
        let warm = args.get_num("warm", dwarm)?;
        let cycles = args.get_num("cycles", dcycles)?;
        return cmd_warmstart_bench(args, warm, cycles);
    }
    // `--adaptive` switches to the adaptive-vs-static control matrix:
    // the hysteresis controller against each static scheme. Its
    // default warmup is long enough for the controller to finish
    // climbing the ladder AND for the baseline-warmup transient to
    // wash out before measurement starts.
    if args.flag("adaptive") {
        let (dwarm, dcycles) = if args.flag("quick") {
            (1_000u64, 2_000u64)
        } else {
            (12_000, 15_000)
        };
        let warm = args.get_num("warm", dwarm)?;
        let cycles = args.get_num("cycles", dcycles)?;
        return cmd_control_bench(args, warm, cycles);
    }
    // Quick mode: just enough cycles to prove the harness works (CI
    // smoke); default mode is long enough for meaningful rates.
    let (dwarm, dcycles) = if args.flag("quick") {
        (200u64, 800u64)
    } else {
        (4_000, 10_000)
    };
    let warm = args.get_num("warm", dwarm)?;
    let cycles = args.get_num("cycles", dcycles)?;
    // `--shards <max>` switches to the intra-run strong-scaling curve:
    // one big-mesh simulation at 1, 2, 4, ... shards.
    if args.get("shards").is_some() {
        return cmd_shard_bench(args, warm, cycles);
    }
    // `--fabric` switches to the inter-chip degradation matrix: a
    // 2-chip package whose reply links get slower and narrower.
    if args.flag("fabric") {
        return cmd_fabric_bench(args, warm, cycles);
    }
    let threads = thread_count(args)?;
    let r = driver::run_bench(threads, warm, cycles);
    let doc = r.to_json();
    if args.flag("json") || args.get("out").is_none() {
        println!("{doc}");
    }
    if let Some(path) = args.get("out") {
        write_file(path, &format!("{doc}\n"))?;
        eprintln!("wrote benchmark report to {path}");
    }
    if !args.flag("json") {
        eprintln!(
            "{} jobs x {} cycles: {:.2}s at --threads 1, {:.2}s at --threads {} ({:.2}x)",
            r.jobs,
            r.cycles_per_job,
            r.single.wall_s,
            r.multi.wall_s,
            r.multi.threads,
            r.speedup()
        );
        eprintln!(
            "fast-forward: {} low-intensity jobs x {} cycles: {:.2}s per-cycle, {:.2}s \
             fast-forwarded ({:.2}x, {:.0}% of cycles skipped)",
            r.low_jobs,
            r.low_cycles_per_job,
            r.ff_off.wall_s,
            r.ff_on.wall_s,
            r.ff_speedup(),
            r.skipped_ratio() * 100.0
        );
    }
    Ok(())
}

/// `clognet bench --shards <max>`: time one 16x16-mesh simulation at
/// shard counts 1, 2, 4, ... `<max>` and report the scaling curve
/// (the `BENCH_shards.json` artifact).
fn cmd_shard_bench(args: &Args, warm: u64, cycles: u64) -> Result<(), ParseArgsError> {
    let max = args.get_num("shards", 4usize)?;
    let cfg = driver::shard_bench_config();
    clognet_core::validate_shards(&cfg, max)
        .map_err(|e| ParseArgsError(format!("--shards: {e}")))?;
    let r = driver::run_shard_bench(max, warm, cycles);
    let doc = r.to_json();
    if args.flag("json") || args.get("out").is_none() {
        println!("{doc}");
    }
    if let Some(path) = args.get("out") {
        write_file(path, &format!("{doc}\n"))?;
        eprintln!("wrote shard-scaling report to {path}");
    }
    if !args.flag("json") {
        eprintln!(
            "shard scaling on a {}x{} mesh ({} warm + {} measured cycles, reports identical: {}):",
            r.mesh.0, r.mesh.1, r.warm, r.cycles, r.identical_reports
        );
        for leg in &r.legs {
            eprintln!(
                "  {:>2} shards: {:.3}s ({:.2}x)",
                leg.shards,
                leg.wall_s,
                r.speedup_at(leg.shards)
            );
        }
    }
    if r.shards_gt_host_threads() {
        eprintln!(
            "warning: benchmarked more shards than this host has hardware threads; \
             wall-clock ratios describe the scheduler, not the engine \
             (identical_reports is still meaningful)"
        );
    }
    Ok(())
}

/// `clognet bench --fabric`: run the three schemes across the 2-chip
/// reply-link degradation matrix and emit the `BENCH_fabric.json`
/// artifact (the inter-chip analogue of the paper's headline figure).
fn cmd_fabric_bench(args: &Args, warm: u64, cycles: u64) -> Result<(), ParseArgsError> {
    let r = driver::run_fabric_bench(warm, cycles);
    let doc = r.to_json();
    if args.flag("json") || args.get("out").is_none() {
        println!("{doc}");
    }
    if let Some(path) = args.get("out") {
        write_file(path, &format!("{doc}\n"))?;
        eprintln!("wrote fabric-degradation report to {path}");
    }
    if !args.flag("json") {
        eprintln!(
            "fabric degradation on a {}-chip package ({} warm + {} measured cycles, \
             reports identical across engines: {}):",
            r.chips, r.warm, r.cycles, r.identical_reports
        );
        for p in &r.points {
            eprintln!(
                "  reply {:>2}x latency, {} flits/cy: base {:.2} | rp {:.2} | dr {:.2} IPC \
                 (dr/base {:.3})",
                p.lat_mult,
                p.reply_width,
                p.baseline.gpu_ipc,
                p.rp.gpu_ipc,
                p.dr.gpu_ipc,
                p.dr.gpu_ipc / p.baseline.gpu_ipc
            );
        }
    }
    Ok(())
}

/// `clognet bench --adaptive`: run the hysteresis controller against
/// each static scheme across the workload-intensity matrix and emit
/// the `BENCH_control.json` artifact (adaptive must track the best
/// static everywhere and beat the worst somewhere).
fn cmd_control_bench(args: &Args, warm: u64, cycles: u64) -> Result<(), ParseArgsError> {
    let r = driver::run_control_bench(warm, cycles);
    let doc = r.to_json();
    if args.flag("json") || args.get("out").is_none() {
        println!("{doc}");
    }
    if let Some(path) = args.get("out") {
        write_file(path, &format!("{doc}\n"))?;
        eprintln!("wrote adaptive-control report to {path}");
    }
    if !args.flag("json") {
        eprintln!(
            "adaptive control vs static schemes ({} warm + {} measured cycles, \
             no-op controller byte-identical to uncontrolled: {}):",
            r.warm, r.cycles, r.identical_reports
        );
        for p in &r.points {
            eprintln!(
                "  {:>2}+{:<10} injbuf {:>2}: base {:.2} | rp {:.2} | dr {:.2} | \
                 adaptive {:.2} IPC ({} actuations, adaptive/best {:.3})",
                p.gpu,
                p.cpu,
                p.injbuf,
                p.baseline.gpu_ipc,
                p.rp.gpu_ipc,
                p.dr.gpu_ipc,
                p.adaptive.gpu_ipc,
                p.actuations,
                p.adaptive.gpu_ipc / p.best_static_ipc()
            );
        }
        eprintln!(
            "  within 5% of best static everywhere: {}; beats worst static somewhere: {}",
            r.within_5pct_everywhere(),
            r.beats_worst_somewhere()
        );
    }
    Ok(())
}

/// `clognet bench --warm-start`: time the warm-started injbuf sweep
/// cold (warmup per variant) vs forked (warmup once, snapshot forked
/// per variant) and emit the `BENCH_warmstart.json` artifact.
fn cmd_warmstart_bench(args: &Args, warm: u64, cycles: u64) -> Result<(), ParseArgsError> {
    let threads = thread_count(args)?;
    let r = driver::run_warmstart_bench(threads, warm, cycles);
    let doc = r.to_json();
    if args.flag("json") || args.get("out").is_none() {
        println!("{doc}");
    }
    if let Some(path) = args.get("out") {
        write_file(path, &format!("{doc}\n"))?;
        eprintln!("wrote warm-start report to {path}");
    }
    if !args.flag("json") {
        eprintln!(
            "warm-start: {} variants x ({} warm + {} measured) at --threads {}: \
             {:.2}s cold, {:.2}s forked ({:.2}x, reports identical: {})",
            r.values.len() * 2,
            r.warm,
            r.cycles,
            r.threads,
            r.cold_wall_s,
            r.forked_wall_s,
            r.speedup(),
            r.identical_reports
        );
    }
    Ok(())
}

/// `clognet snapshot`: build a system, simulate the warmup, and write
/// the versioned snapshot where `resume` / `--warm-from` can fork it.
fn cmd_snapshot(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = run_keys();
    keys.push("out");
    args.reject_unknown(&keys)?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 6_000u64)?;
    let out = args
        .get("out")
        .ok_or_else(|| ParseArgsError("snapshot needs --out <path>".into()))?;
    if args.get("cycles").is_some() {
        return Err(ParseArgsError(
            "snapshot takes --warm (cycles to simulate before snapshotting), not --cycles".into(),
        ));
    }
    let cfg = config_from(args)?;
    check_fabric(&cfg)?;
    let shards = shard_count(args, &cfg)?;
    let mut sys = MultiChipSystem::new(cfg, gpu, cpu);
    sys.set_fast_forward(!args.flag("no-ff"));
    apply_shards(&mut sys, shards);
    sys.run(warm);
    let snap = sys.snapshot();
    std::fs::write(out, snap.as_bytes())
        .map_err(|e| ParseArgsError(format!("writing {out}: {e}")))?;
    eprintln!(
        "wrote snapshot of {gpu}+{cpu} at cycle {} ({} bytes, key {:016x}) to {out}",
        snap.cycle(),
        snap.as_bytes().len(),
        snap.key()
    );
    Ok(())
}

/// `clognet resume`: restore a snapshot file, optionally retarget
/// warm-applicable knobs, and measure from there — the single-run face
/// of the fork engine.
fn cmd_resume(args: &Args) -> Result<(), ParseArgsError> {
    args.reject_unknown(&["from", "cycles", "scheme", "set", "no-ff", "shards", "json"])?;
    let path = args
        .get("from")
        .ok_or_else(|| ParseArgsError("resume needs --from <snapshot>".into()))?;
    let cycles = args.get_num("cycles", 15_000u64)?;
    let bytes = std::fs::read(path).map_err(|e| ParseArgsError(format!("reading {path}: {e}")))?;
    let snap = clognet_core::Snapshot::from_bytes(bytes)
        .map_err(|e| ParseArgsError(format!("{path} is not a usable snapshot: {e}")))?;
    let mut sys = MultiChipSystem::restore(&snap)
        .map_err(|e| ParseArgsError(format!("{path} failed to restore: {e}")))?;
    if let Some(s) = args.get("scheme") {
        sys.set_scheme(clognet_cli::config::parse_scheme(s)?);
    }
    if let Some(sets) = args.get("set") {
        for kv in sets.split(',') {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| ParseArgsError(format!("--set wants k=v[,k=v...], got `{kv}`")))?;
            let v: u64 = v
                .parse()
                .map_err(|_| ParseArgsError(format!("--set {k}: bad value `{v}`")))?;
            sys.apply_warm_param(k, v).map_err(ParseArgsError)?;
        }
    }
    let shards = shard_count(args, sys.config())?;
    sys.set_fast_forward(!args.flag("no-ff"));
    apply_shards(&mut sys, shards);
    let scheme = sys.config().scheme;
    eprintln!(
        "resumed {}+{} at cycle {} from {path}",
        snap.gpu_bench(),
        snap.cpu_bench(),
        snap.cycle()
    );
    sys.reset_stats();
    sys.run(cycles);
    let r = sys.report();
    if args.flag("json") {
        println!("{}", report::report_json(scheme, &r));
    } else {
        report::print_report(scheme, &r);
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = run_keys();
    keys.extend_from_slice(&["last", "kind", "episode-enter", "episode-exit"]);
    args.reject_unknown(&keys)?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 4_000u64)?;
    let cycles = args.get_num("cycles", 4_000u64)?;
    let last = args.get_num("last", 40usize)?;
    let mut cfg = config_from(args)?;
    check_fabric(&cfg)?;
    if cfg.chips() > 1 {
        return Err(ParseArgsError(
            "trace is single-chip only; drop --chips / --fabric-*".into(),
        ));
    }
    if args.get("scheme").is_none() {
        cfg.scheme = Scheme::DelegatedReplies;
    }
    let shards = shard_count(args, &cfg)?;
    // Episode thresholds ride on telemetry, so asking for them turns
    // the episode detector on alongside the protocol trace.
    let want_episodes = args.get("episode-enter").is_some() || args.get("episode-exit").is_some();
    let mut sys = System::new(cfg, gpu, cpu);
    sys.set_fast_forward(!args.flag("no-ff"));
    if shards > 1 {
        sys.set_tick_engine(TickEngine::Sharded(shards))
            .expect("shard count validated against this config");
    }
    if want_episodes {
        sys.enable_telemetry(telemetry_config(args)?);
    }
    sys.run(warm);
    sys.enable_trace(65_536);
    sys.run(cycles);
    let trace = sys.trace();
    // Counts by kind.
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for t in trace.events() {
        *counts.entry(t.event.kind()).or_default() += 1;
    }
    println!(
        "{} protocol events over {cycles} cycles ({} retained):",
        trace.total(),
        trace.events().count()
    );
    for (k, n) in &counts {
        println!("  {k:<12} {n}");
    }
    println!(
        "
last {last} events{}:",
        match args.get("kind") {
            Some(k) => format!(" of kind `{k}`"),
            None => String::new(),
        }
    );
    let filter = args.get("kind");
    let shown: Vec<String> = trace
        .events()
        .filter(|t| filter.is_none_or(|k| t.event.kind() == k))
        .map(|t| t.to_string())
        .collect();
    for line in shown.iter().rev().take(last).rev() {
        println!("  {line}");
    }
    if want_episodes {
        sys.finish_telemetry();
        let t = sys.telemetry().expect("telemetry enabled");
        println!();
        print!(
            "{}",
            timeline::render_episodes(t.session.episodes.episodes())
        );
    }
    Ok(())
}

fn cmd_list() {
    println!("GPU benchmarks (Table II):");
    for p in clognet_workloads::gpu_benchmarks() {
        println!(
            "  {:<7} grid {:?}, shared {:.0}%, writes {:.0}%",
            p.name,
            p.grid_dim,
            p.shared_fraction * 100.0,
            p.write_fraction * 100.0
        );
    }
    println!("\nCPU benchmarks (PARSEC):");
    for p in clognet_workloads::cpu_benchmarks() {
        println!(
            "  {:<14} rate {:.3} req/cy, window {}, writes {:.0}%",
            p.name,
            p.req_rate,
            p.window,
            p.write_fraction * 100.0
        );
    }
    println!("\nschemes  : baseline | rp | rp:<fanout> | dr");
    println!("layouts  : a (baseline) | b (edge) | c (clustered) | d (distributed)");
    println!("topologies: mesh | crossbar | fbfly | dragonfly");
    println!("routing  : xy|yx|dyxy|footprint|hare, as <req>-<rep> (e.g. yx-xy)");
    println!("control  : none (default) | noop | hysteresis (adaptive baseline->rp->dr ladder)");
}

fn print_help() {
    println!(
        "clognet — heterogeneous CPU-GPU architecture simulator\n\
         (reproduction of `Delegated Replies', HPCA 2022)\n\n\
         USAGE:\n  clognet <command> [--key value]...\n\n\
         COMMANDS:\n\
         \x20 run      simulate one workload under one configuration\n\
         \x20 compare  baseline vs Realistic Probing vs Delegated Replies\n\
         \x20 sweep    sweep one parameter with and without Delegated Replies\n\
         \x20 snapshot simulate a warmup once and save the full system state\n\
         \x20 resume   restore a snapshot, retarget warm knobs, and measure\n\
         \x20 bench    time a fixed workload matrix 1- vs N-threaded (JSON report)\n\
         \x20 timeline ASCII per-epoch clog timeline + detected clog episodes\n\
         \x20 trace    protocol-event trace (delegations, blocking, probes)\n\
         \x20 fuzz     seeded scenario fuzzing of the engine-equivalence contract\n\
         \x20 serve    persistent simulation service (job queue + result cache)\n\
         \x20 cluster  one node of a sharded multi-node service (serve --peers works too)\n\
         \x20 cluster-bench  1-node vs N-node cluster throughput (JSON report)\n\
         \x20 submit   send one job/request to a running service\n\
         \x20 batch    submit an NDJSON job file to a running service\n\
         \x20 fingerprint  print a job's canonical content-address (and ring placement)\n\
         \x20 list     available benchmarks and option values\n\
         \x20 help     this text\n\n\
         COMMON OPTIONS:\n\
         \x20 --gpu <bench>      GPU benchmark (Table II; default HS)\n\
         \x20 --cpu <bench>      CPU benchmark (PARSEC; default bodytrack)\n\
         \x20 --scheme <s>       baseline | rp | rp:<fanout> | dr\n\
         \x20 --layout <l>       a | b | c | d (sets the layout's best routing)\n\
         \x20 --topology <t>     mesh | crossbar | fbfly | dragonfly\n\
         \x20 --routing <r>-<r>  per-class dimension order, e.g. yx-xy\n\
         \x20 --width <bytes>    NoC channel width (default 16)\n\
         \x20 --l1org <o>        private | dcl1 | dyneb\n\
         \x20 --cta <p>          rr | dist\n\
         \x20 --vnets <a>+<b>    shared physical net with a/b VCs per class\n\
         \x20 --mesh <w>x<h>     scale the chip (node mix kept proportional)\n\
         \x20 --injbuf <n>       memory-node injection buffer depth in packets\n\
         \x20 --warm/--cycles    warmup / measured cycles (6000 / 15000)\n\
         \x20 --no-ff            disable event-horizon fast-forward (reference loop)\n\
         \x20 --seed <n>         workload + mapping seed\n\
         \x20 --threads <n>      compare/sweep/bench worker threads (default: all cores)\n\
         \x20 --shards <n>       spatial shards ticking one simulation in parallel\n\
         \x20                    (must divide the mesh rows; bench: max of scaling curve)\n\n\
         MULTI-CHIP OPTIONS (run/compare/sweep/timeline/snapshot/serve):\n\
         \x20 --chips <n>        chips in the package (default 1 = no fabric)\n\
         \x20 --fabric-topology <t>   pair | ring | all (default: pair, ring when >2)\n\
         \x20 --fabric-width <f>      request link width, flits/cycle (default 4)\n\
         \x20 --fabric-latency <n>    request per-hop latency in cycles (default 4)\n\
         \x20 --fabric-reply-width <f>   reply link width, flits/cycle (default 4)\n\
         \x20 --fabric-reply-latency <n> reply per-hop latency in cycles (default 4)\n\
         \x20 --fabric-queue <n>      per-link queue depth in packets (default 8)\n\
         \x20 --fabric-gateways <n>   gateway mem-nodes per chip (default 2)\n\
         \x20 --fabric-interleave <i> hash | modulo line-to-chip homing (default hash)\n\
         \x20 --fabric           bench: scheme matrix across reply-link degradation\n\n\
         SNAPSHOT OPTIONS:\n\
         \x20 --warm-from <m>    compare/sweep: fork (warm once, fork per variant) |\n\
         \x20                    each (re-warm per variant, same semantics) | <snap file>\n\
         \x20                    sweep: only warm-applicable params (injbuf|drmax)\n\
         \x20 --out <path>       snapshot: where to write the system state\n\
         \x20 --from <path>      resume: snapshot file to restore\n\
         \x20 --set <k=v,...>    resume: retarget warm-applicable knobs (injbuf|drmax)\n\
         \x20 --snapshot-every <n>  run: write a snapshot every n measured cycles\n\
         \x20 --snapshot-out <p> run: snapshot path prefix (default `clognet`)\n\
         \x20 --warm-start       bench: time the sweep cold vs snapshot-forked\n\n\
         TELEMETRY OPTIONS:\n\
         \x20 --metrics <path>   run/timeline: write the telemetry session as JSON\n\
         \x20 --csv <path>       run: write per-epoch series as CSV\n\
         \x20 --sample <n>       telemetry epoch length in cycles (default 500)\n\
         \x20 --episode-enter <n> run/timeline/trace: min blocked cycles before an\n\
         \x20                    episode counts (default 0 = every blocked span)\n\
         \x20 --episode-exit <n> run/timeline/trace: merge episodes closer than n cycles\n\
         \x20 --json             run/compare/sweep: machine-readable stdout\n\n\
         CONTROL OPTIONS (run/compare/sweep/timeline/snapshot/serve):\n\
         \x20 --control <p>      none (default) | noop | hysteresis — epoch-boundary\n\
         \x20                    adaptive scheme ladder driven by live telemetry\n\
         \x20 --control-interval <n>      decision interval in cycles (default 500)\n\
         \x20 --control-enter <permille>  blocked fraction that escalates (default 250)\n\
         \x20 --control-exit <permille>   blocked fraction that de-escalates (default 50)\n\
         \x20 --control-enter-episode <n> hot-streak cycles that jump to dr (default 1000)\n\
         \x20 --control-exit-episode <n>  cold cycles before stepping down (default 2000)\n\
         \x20 --control-dwell <n>         intervals to hold after a switch (default 2)\n\
         \x20 --adaptive         bench: adaptive controller vs static scheme matrix\n\n\
         SERVICE OPTIONS:\n\
         \x20 --addr <h:p>       serve/submit/batch endpoint (default 127.0.0.1:9347)\n\
         \x20 --workers <n>      serve: simulation worker threads (default 2)\n\
         \x20 --queue <n>        serve: job-queue depth before `overloaded` (default 16)\n\
         \x20 --cache <n>        serve: reports kept in the result cache (default 1024)\n\
         \x20 --max-cycles <n>   serve: per-job cycle-budget ceiling\n\
         \x20 --timeout-ms <n>   serve: per-job wall-time limit\n\
         \x20 --op <o>           submit: run | ping | stats | cluster-stats | shutdown\n\
         \x20 --file <path>      batch: NDJSON job file (one job object per line)\n\
         \x20 --retries <n>      submit/batch: connect attempts (default 8)\n\
         \x20 --canonical        fingerprint: also print the canonical serialization\n\n\
         CLUSTER OPTIONS:\n\
         \x20 --peers <h:p,...>  cluster/serve: seed peers; submit/batch: failover list\n\
         \x20 --replicas <n>     cluster: cache copies on ring successors (default 1)\n\
         \x20 --advertise <h:p>  cluster: address peers should dial back (default --addr)\n\
         \x20 --vnodes <n>       cluster/fingerprint: virtual nodes per peer (default 64)\n\
         \x20 --heartbeat-ms <n> cluster: peer probe interval (default 250)\n\
         \x20 --owner            fingerprint: print only the owning node's address\n\n\
         EXAMPLES:\n\
         \x20 clognet compare --gpu MM --cpu canneal\n\
         \x20 clognet run --gpu BP --cpu ferret --scheme dr --layout d\n\
         \x20 clognet run --gpu NN --cpu canneal --metrics m.json --sample 500\n\
         \x20 clognet timeline --gpu NN --cpu canneal --scheme baseline\n\
         \x20 clognet sweep --param width --values 8,16,24,32 --gpu HS --cpu x264\n\
         \x20 clognet sweep --param injbuf --values 2,4,8,16 --warm-from fork --json\n\
         \x20 clognet snapshot --gpu HS --cpu bodytrack --warm 20000 --out warm.snap\n\
         \x20 clognet resume --from warm.snap --cycles 4000 --set injbuf=4\n\
         \x20 clognet bench --quick --out BENCH_smoke.json\n\
         \x20 clognet bench --shards 4 --out BENCH_shards.json\n\
         \x20 clognet compare --chips 2 --fabric-reply-latency 40 --json\n\
         \x20 clognet bench --fabric --quick --out BENCH_fabric.json\n\
         \x20 clognet bench --warm-start --out BENCH_warmstart.json\n\
         \x20 clognet run --gpu HS --cpu bodytrack --injbuf 4 --control hysteresis\n\
         \x20 clognet bench --adaptive --quick --out BENCH_control.json\n\
         \x20 clognet fuzz --seed 1 --cases 25\n\
         \x20 clognet serve --workers 4 &\n\
         \x20 clognet submit --gpu MM --cpu canneal --scheme dr\n\
         \x20 clognet serve --addr 127.0.0.1:9401 --peers 127.0.0.1:9402,127.0.0.1:9403 &\n\
         \x20 clognet submit --peers 127.0.0.1:9401,127.0.0.1:9402 --op cluster-stats\n\
         \x20 clognet fingerprint --gpu MM --cpu canneal --scheme dr --canonical"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_invocations_error_instead_of_printing_help() {
        // A dangling option must propagate as an error (exit code 2),
        // not silently print help and exit 0.
        assert!(dispatch(vec!["run".into(), "--gpu".into()]).is_err());
        // Unknown options and commands likewise.
        assert!(dispatch(vec!["run".into(), "--bogus".into(), "x".into()]).is_err());
        assert!(dispatch(vec!["frobnicate".into()]).is_err());
    }

    #[test]
    fn empty_invocation_prints_help_and_succeeds() {
        assert!(dispatch(Vec::new()).is_ok());
        assert!(dispatch(vec!["help".into()]).is_ok());
    }

    fn args_of(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn run_rejects_shard_counts_that_cannot_partition_the_mesh() {
        // 3 does not divide the default 8 mesh rows: a clear error
        // before any simulation is built, not a panic or a silent
        // fallback to the sequential engine.
        let e = dispatch(args_of(&["run", "--shards", "3"])).unwrap_err();
        assert!(e.0.contains("mesh rows"), "{e}");
        // More shards than rows fails the same way.
        let e = dispatch(args_of(&["run", "--shards", "16"])).unwrap_err();
        assert!(e.0.contains("mesh rows"), "{e}");
        // Non-mesh topologies only run sequentially.
        let e = dispatch(args_of(&["run", "--topology", "crossbar", "--shards", "2"])).unwrap_err();
        assert!(e.0.contains("mesh topology"), "{e}");
        // Zero shards is nonsense whatever the topology.
        assert!(dispatch(args_of(&["run", "--shards", "0"])).is_err());
    }

    #[test]
    fn compare_and_sweep_reject_bad_shard_counts_too() {
        let e = dispatch(args_of(&["compare", "--shards", "5"])).unwrap_err();
        assert!(e.0.contains("mesh rows"), "{e}");
        let e = dispatch(args_of(&[
            "sweep", "--param", "width", "--values", "8,16", "--shards", "7",
        ]))
        .unwrap_err();
        assert!(e.0.contains("mesh rows"), "{e}");
    }

    #[test]
    fn run_rejects_degenerate_fabric_configs_up_front() {
        // Structurally impossible packages fail before any simulation
        // is built, mirroring the --shards validation above.
        let e = dispatch(args_of(&["run", "--chips", "0"])).unwrap_err();
        assert!(e.0.contains("chips must be at least 1"), "{e}");
        let e = dispatch(args_of(&["run", "--chips", "2", "--fabric-width", "0"])).unwrap_err();
        assert!(e.0.contains("link width"), "{e}");
        let e = dispatch(args_of(&["run", "--chips", "2", "--fabric-queue", "0"])).unwrap_err();
        assert!(e.0.contains("queue"), "{e}");
        // More gateways than the chip has memory nodes (default mesh
        // has 8) cannot be wired.
        let e = dispatch(args_of(&["run", "--chips", "2", "--fabric-gateways", "99"])).unwrap_err();
        assert!(e.0.contains("memory nodes"), "{e}");
        // The pair topology only spans two chips.
        let e = dispatch(args_of(&[
            "run",
            "--chips",
            "4",
            "--fabric-topology",
            "pair",
        ]))
        .unwrap_err();
        assert!(e.0.contains("pair"), "{e}");
    }

    #[test]
    fn fabric_options_without_chips_error() {
        let e = dispatch(args_of(&["run", "--chips", "1", "--fabric-width", "8"])).unwrap_err();
        assert!(e.0.contains("--chips 2 or more"), "{e}");
    }

    #[test]
    fn trace_rejects_multi_chip_packages() {
        let e = dispatch(args_of(&["trace", "--chips", "2"])).unwrap_err();
        assert!(e.0.contains("single-chip"), "{e}");
    }
}
