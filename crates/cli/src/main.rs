//! `clognet` — command-line driver for the clognet heterogeneous-
//! architecture simulator (a reproduction of *Delegated Replies*,
//! HPCA 2022).
//!
//! ```text
//! clognet run     --gpu HS --cpu bodytrack --scheme dr [--cycles N] [--warm N] ...
//! clognet compare --gpu HS --cpu bodytrack             # baseline vs RP vs DR
//! clognet sweep   --param width --values 8,16,24 ...   # config sweeps
//! clognet list                                         # benchmarks & options
//! clognet help
//! ```

use clognet_cli::args::{Args, ParseArgsError};
use clognet_cli::config::{config_from, CONFIG_KEYS};
use clognet_cli::report;
use clognet_core::System;
use clognet_proto::{Scheme, SystemConfig};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match dispatch(raw) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn dispatch(raw: Vec<String>) -> Result<(), ParseArgsError> {
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(_) => {
            print_help();
            return Ok(());
        }
    };
    match args.command.as_str() {
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "sweep" => cmd_sweep(&args),
        "trace" => cmd_trace(&args),
        "list" => {
            cmd_list();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(ParseArgsError(format!(
            "unknown command `{other}`; try `clognet help`"
        ))),
    }
}

fn run_keys() -> Vec<&'static str> {
    let mut keys = CONFIG_KEYS.to_vec();
    keys.extend_from_slice(&["cycles", "warm"]);
    keys
}

fn measure(
    cfg: SystemConfig,
    gpu: &str,
    cpu: &str,
    warm: u64,
    cycles: u64,
) -> clognet_core::Report {
    let mut sys = System::new(cfg, gpu, cpu);
    sys.run(warm);
    sys.reset_stats();
    sys.run(cycles);
    sys.report()
}

fn cmd_run(args: &Args) -> Result<(), ParseArgsError> {
    args.reject_unknown(&run_keys())?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 6_000u64)?;
    let cycles = args.get_num("cycles", 15_000u64)?;
    let cfg = config_from(args)?;
    let scheme = cfg.scheme;
    let r = measure(cfg, gpu, cpu, warm, cycles);
    report::print_report(scheme, &r);
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), ParseArgsError> {
    args.reject_unknown(&run_keys())?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 6_000u64)?;
    let cycles = args.get_num("cycles", 15_000u64)?;
    println!("comparing schemes on {gpu}+{cpu} ({warm} warm + {cycles} measured cycles)\n");
    let mut rows = Vec::new();
    for scheme in [
        Scheme::Baseline,
        Scheme::rp_default(),
        Scheme::DelegatedReplies,
    ] {
        let mut cfg = config_from(args)?;
        cfg.scheme = scheme;
        rows.push((scheme, measure(cfg, gpu, cpu, warm, cycles)));
    }
    report::print_comparison(&rows);
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = run_keys();
    keys.extend_from_slice(&["param", "values"]);
    args.reject_unknown(&keys)?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 6_000u64)?;
    let cycles = args.get_num("cycles", 15_000u64)?;
    let param = args
        .get("param")
        .ok_or_else(|| ParseArgsError("sweep needs --param (width|l1kb|llcmb|injbuf)".into()))?;
    let values: Vec<u64> = args
        .get("values")
        .ok_or_else(|| ParseArgsError("sweep needs --values v1,v2,...".into()))?
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|_| ParseArgsError(format!("bad sweep value `{v}`")))
        })
        .collect::<Result<_, _>>()?;
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        param, "base IPC", "DR IPC", "DR/base", "blocked%"
    );
    for &v in &values {
        let apply = |cfg: &mut SystemConfig| -> Result<(), ParseArgsError> {
            match param {
                "width" => cfg.noc.channel_bytes = v as u32,
                "l1kb" => {
                    cfg.gpu.l1.capacity_bytes = v * 1024;
                }
                "llcmb" => {
                    cfg.llc.slice.capacity_bytes = v * 1024 * 1024 / cfg.n_mem as u64;
                }
                "injbuf" => cfg.noc.mem_inj_buf_pkts = v as usize,
                other => {
                    return Err(ParseArgsError(format!(
                        "unknown sweep param `{other}` (width|l1kb|llcmb|injbuf)"
                    )))
                }
            }
            Ok(())
        };
        let mut base_cfg = config_from(args)?;
        base_cfg.scheme = Scheme::Baseline;
        apply(&mut base_cfg)?;
        let mut dr_cfg = config_from(args)?;
        dr_cfg.scheme = Scheme::DelegatedReplies;
        apply(&mut dr_cfg)?;
        let b = measure(base_cfg, gpu, cpu, warm, cycles);
        let d = measure(dr_cfg, gpu, cpu, warm, cycles);
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.3} {:>9.1}%",
            v,
            b.gpu_ipc,
            d.gpu_ipc,
            d.gpu_ipc / b.gpu_ipc,
            b.mem_blocked_rate * 100.0
        );
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = run_keys();
    keys.extend_from_slice(&["last", "kind"]);
    args.reject_unknown(&keys)?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 4_000u64)?;
    let cycles = args.get_num("cycles", 4_000u64)?;
    let last = args.get_num("last", 40usize)?;
    let mut cfg = config_from(args)?;
    if args.get("scheme").is_none() {
        cfg.scheme = Scheme::DelegatedReplies;
    }
    let mut sys = System::new(cfg, gpu, cpu);
    sys.run(warm);
    sys.enable_trace(65_536);
    sys.run(cycles);
    let trace = sys.trace();
    // Counts by kind.
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for t in trace.events() {
        *counts.entry(t.event.kind()).or_default() += 1;
    }
    println!(
        "{} protocol events over {cycles} cycles ({} retained):",
        trace.total(),
        trace.events().count()
    );
    for (k, n) in &counts {
        println!("  {k:<12} {n}");
    }
    println!(
        "
last {last} events{}:",
        match args.get("kind") {
            Some(k) => format!(" of kind `{k}`"),
            None => String::new(),
        }
    );
    let filter = args.get("kind");
    let shown: Vec<String> = trace
        .events()
        .filter(|t| filter.is_none_or(|k| t.event.kind() == k))
        .map(|t| t.to_string())
        .collect();
    for line in shown.iter().rev().take(last).rev() {
        println!("  {line}");
    }
    Ok(())
}

fn cmd_list() {
    println!("GPU benchmarks (Table II):");
    for p in clognet_workloads::gpu_benchmarks() {
        println!(
            "  {:<7} grid {:?}, shared {:.0}%, writes {:.0}%",
            p.name,
            p.grid_dim,
            p.shared_fraction * 100.0,
            p.write_fraction * 100.0
        );
    }
    println!("\nCPU benchmarks (PARSEC):");
    for p in clognet_workloads::cpu_benchmarks() {
        println!(
            "  {:<14} rate {:.3} req/cy, window {}, writes {:.0}%",
            p.name,
            p.req_rate,
            p.window,
            p.write_fraction * 100.0
        );
    }
    println!("\nschemes  : baseline | rp | rp:<fanout> | dr");
    println!("layouts  : a (baseline) | b (edge) | c (clustered) | d (distributed)");
    println!("topologies: mesh | crossbar | fbfly | dragonfly");
    println!("routing  : xy|yx|dyxy|footprint|hare, as <req>-<rep> (e.g. yx-xy)");
}

fn print_help() {
    println!(
        "clognet — heterogeneous CPU-GPU architecture simulator\n\
         (reproduction of `Delegated Replies', HPCA 2022)\n\n\
         USAGE:\n  clognet <command> [--key value]...\n\n\
         COMMANDS:\n\
         \x20 run      simulate one workload under one configuration\n\
         \x20 compare  baseline vs Realistic Probing vs Delegated Replies\n\
         \x20 sweep    sweep one parameter with and without Delegated Replies\n\
         \x20 list     available benchmarks and option values\n\
         \x20 help     this text\n\n\
         COMMON OPTIONS:\n\
         \x20 --gpu <bench>      GPU benchmark (Table II; default HS)\n\
         \x20 --cpu <bench>      CPU benchmark (PARSEC; default bodytrack)\n\
         \x20 --scheme <s>       baseline | rp | rp:<fanout> | dr\n\
         \x20 --layout <l>       a | b | c | d (sets the layout's best routing)\n\
         \x20 --topology <t>     mesh | crossbar | fbfly | dragonfly\n\
         \x20 --routing <r>-<r>  per-class dimension order, e.g. yx-xy\n\
         \x20 --width <bytes>    NoC channel width (default 16)\n\
         \x20 --l1org <o>        private | dcl1 | dyneb\n\
         \x20 --cta <p>          rr | dist\n\
         \x20 --vnets <a>+<b>    shared physical net with a/b VCs per class\n\
         \x20 --mesh <w>x<h>     scale the chip (node mix kept proportional)\n\
         \x20 --warm/--cycles    warmup / measured cycles (6000 / 15000)\n\
         \x20 --seed <n>         workload + mapping seed\n\n\
         EXAMPLES:\n\
         \x20 clognet compare --gpu MM --cpu canneal\n\
         \x20 clognet run --gpu BP --cpu ferret --scheme dr --layout d\n\
         \x20 clognet sweep --param width --values 8,16,24,32 --gpu HS --cpu x264"
    );
}
