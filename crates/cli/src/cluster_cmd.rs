//! The cluster subcommands: `cluster` (run one node of a sharded
//! service) and `cluster-bench` (1-node vs N-node throughput).
//!
//! `clognet cluster` is `clognet serve` plus membership: the node joins
//! the peers named by `--peers`, shards job fingerprints over the
//! consistent-hash ring, replicates cache entries to ring successors,
//! and delegates overflow to the least-loaded alive peer. `clognet
//! serve --peers ...` routes here too, so a single-node deployment
//! grows into a cluster by adding one flag.

use crate::args::{Args, ParseArgsError};
use crate::serve_cmd::{SimHandler, DEFAULT_ADDR};
use clognet_bench::runner::{run_jobs_with_state, timed};
use clognet_cluster::{ClusterConfig, ClusterHandle, ClusterNode};
use clognet_serve::client::{Client, RetryPolicy};
use clognet_serve::server::{JobHandler, ServeConfig};
use clognet_serve::wire::JobSpec;
use clognet_telemetry::export::json_f64;
use std::sync::Arc;
use std::time::Duration;

/// Option keys shared by `serve --peers` and `cluster`.
pub const CLUSTER_KEYS: &[&str] = &[
    "addr",
    "advertise",
    "peers",
    "replicas",
    "vnodes",
    "heartbeat-ms",
    "suspect-after",
    "dead-after",
    "workers",
    "queue",
    "cache",
    "snap-cache",
    "max-cycles",
    "timeout-ms",
    "drain-ms",
];

/// Split a `--peers a:1,b:2` list.
pub fn parse_peers(list: &str) -> Vec<String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

/// Build a [`ClusterConfig`] from `cluster` options.
///
/// # Errors
///
/// Non-numeric numeric options.
pub fn cluster_config_from(args: &Args) -> Result<ClusterConfig, ParseArgsError> {
    let default = ClusterConfig::default();
    let serve_default = ServeConfig::default();
    Ok(ClusterConfig {
        serve: ServeConfig {
            addr: args.get_or("addr", DEFAULT_ADDR).to_string(),
            workers: args.get_num("workers", serve_default.workers)?.max(1),
            queue_cap: args.get_num("queue", serve_default.queue_cap)?.max(1),
            cache_cap: args.get_num("cache", serve_default.cache_cap)?,
            snap_cache_cap: args.get_num("snap-cache", serve_default.snap_cache_cap)?,
            max_job_cycles: args.get_num("max-cycles", serve_default.max_job_cycles)?,
            job_timeout: Duration::from_millis(
                args.get_num("timeout-ms", serve_default.job_timeout.as_millis() as u64)?,
            ),
            drain_timeout: Duration::from_millis(
                args.get_num("drain-ms", serve_default.drain_timeout.as_millis() as u64)?,
            ),
        },
        advertise: args.get("advertise").map(String::from),
        seeds: args.get("peers").map(parse_peers).unwrap_or_default(),
        replicas: args.get_num("replicas", default.replicas)?,
        vnodes: args.get_num("vnodes", default.vnodes)?.max(1),
        heartbeat: Duration::from_millis(
            args.get_num("heartbeat-ms", default.heartbeat.as_millis() as u64)?
                .max(1),
        ),
        suspect_after: args.get_num("suspect-after", default.suspect_after)?,
        dead_after: args.get_num("dead-after", default.dead_after)?,
        backoff_cap: default.backoff_cap,
    })
}

/// `clognet cluster`: run one cluster node in the foreground until a
/// client sends `shutdown`.
///
/// # Errors
///
/// Bad options or a failed bind.
pub fn cmd_cluster(args: &Args) -> Result<(), ParseArgsError> {
    args.reject_unknown(CLUSTER_KEYS)?;
    let cfg = cluster_config_from(args)?;
    let (workers, replicas, seeds) = (cfg.serve.workers, cfg.replicas, cfg.seeds.len());
    let node = ClusterNode::bind(cfg, Arc::new(SimHandler))
        .map_err(|e| ParseArgsError(format!("binding cluster socket: {e}")))?;
    eprintln!(
        "clognet-cluster node {} listening on {} ({workers} workers, {replicas} replicas, \
         {seeds} seed peers); stop with `clognet submit --op shutdown`",
        node.advertise(),
        node.local_addr(),
    );
    node.run()
        .map_err(|e| ParseArgsError(format!("cluster loop failed: {e}")))
}

fn bench_spec(warm: u64, cycles: u64, j: u64) -> JobSpec {
    let mut spec = JobSpec::new("HS", "bodytrack");
    spec.warm = warm;
    // Distinct cycle counts give every job its own fingerprint, so the
    // run measures simulation throughput, not cache hits.
    spec.cycles = cycles + j;
    spec
}

/// Boot `n` fully-meshed in-process nodes with the real simulator.
fn boot_bench_mesh(
    n: usize,
    workers: usize,
) -> Result<(Vec<String>, Vec<ClusterHandle>), ParseArgsError> {
    let cfg = ClusterConfig {
        serve: ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            ..ServeConfig::default()
        },
        heartbeat: Duration::from_millis(100),
        ..ClusterConfig::default()
    };
    let nodes: Vec<ClusterNode> = (0..n)
        .map(|_| {
            ClusterNode::bind(cfg.clone(), Arc::new(SimHandler))
                .map_err(|e| ParseArgsError(format!("binding bench node: {e}")))
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<String> = nodes.iter().map(|n| n.advertise().to_string()).collect();
    for node in &nodes {
        for addr in &addrs {
            if addr != node.advertise() {
                node.add_peer(addr);
            }
        }
    }
    let handles = nodes
        .into_iter()
        .map(|n| n.spawn().expect("spawn bench node"))
        .collect();
    Ok((addrs, handles))
}

/// Submit every job through round-robin gateways; panics propagate from
/// the runner if a submit fails outright.
///
/// Each driver thread keeps one persistent connection per gateway and
/// reuses it for every job it claims, so the measured span times job
/// throughput rather than per-job TCP setup (and its allocations).
fn drive(addrs: &[String], specs: &[JobSpec], clients: usize) -> usize {
    let jobs: Vec<(String, JobSpec)> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| (addrs[i % addrs.len()].clone(), s.clone()))
        .collect();
    let policy = RetryPolicy {
        attempts: 10,
        base_ms: 10,
        cap_ms: 200,
        seed: 0xC1A5,
    };
    let results = run_jobs_with_state(
        jobs,
        clients,
        Vec::<(String, Client)>::new,
        |conns, (addr, spec)| {
            let fp = SimHandler.fingerprint(&spec).map_err(|e| e.message)?;
            let pos = match conns.iter().position(|(a, _)| *a == addr) {
                Some(pos) => pos,
                None => {
                    let client = Client::connect(&addr, &policy.for_fingerprint(fp))
                        .map_err(|e| e.to_string())?;
                    conns.push((addr.clone(), client));
                    conns.len() - 1
                }
            };
            conns[pos].1.submit(&spec).map_err(|e| {
                // Drop a connection that failed mid-conversation so the
                // next job on this gateway dials fresh instead of
                // inheriting a broken stream.
                conns.swap_remove(pos);
                e.to_string()
            })
        },
    );
    let mut ok = 0usize;
    for r in &results {
        match r {
            Ok(_) => ok += 1,
            Err(e) => eprintln!("cluster-bench job failed: {e}"),
        }
    }
    ok
}

fn shutdown_mesh(addrs: &[String], handles: Vec<ClusterHandle>) {
    let policy = RetryPolicy {
        attempts: 3,
        base_ms: 10,
        cap_ms: 50,
        seed: 0,
    };
    for addr in addrs {
        if let Ok(mut c) = Client::connect(addr, &policy) {
            let _ = c.shutdown();
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

/// `clognet cluster-bench`: time the same job matrix against a 1-node
/// and an N-node in-process cluster and emit a JSON report (the
/// committed `BENCH_cluster.json`).
///
/// # Errors
///
/// Bad options or bind failures.
pub fn cmd_cluster_bench(args: &Args) -> Result<(), ParseArgsError> {
    args.reject_unknown(&[
        "nodes", "jobs", "warm", "cycles", "workers", "clients", "out", "quick", "json",
    ])?;
    let nodes: usize = args.get_num("nodes", 3usize)?.max(2);
    let (dwarm, dcycles, djobs) = if args.flag("quick") {
        (200u64, 800u64, 8usize)
    } else {
        (2_000, 6_000, 24)
    };
    let warm = args.get_num("warm", dwarm)?;
    let cycles = args.get_num("cycles", dcycles)?;
    let jobs: usize = args.get_num("jobs", djobs)?.max(1);
    let workers: usize = args.get_num("workers", 2usize)?.max(1);
    let clients: usize = args.get_num("clients", 8usize)?.max(1);
    let specs: Vec<JobSpec> = (0..jobs as u64)
        .map(|j| bench_spec(warm, cycles, j))
        .collect();

    eprintln!("cluster-bench: {jobs} jobs x ~{cycles} cycles, {clients} clients");
    eprintln!("  leg 1/2: single node ({workers} workers)");
    let (single_addrs, single_handles) = boot_bench_mesh(1, workers)?;
    let (single_ok, single_wall) = timed(|| drive(&single_addrs, &specs, clients));
    shutdown_mesh(&single_addrs, single_handles);

    eprintln!("  leg 2/2: {nodes} nodes ({workers} workers each)");
    let (multi_addrs, multi_handles) = boot_bench_mesh(nodes, workers)?;
    let (multi_ok, multi_wall) = timed(|| drive(&multi_addrs, &specs, clients));
    shutdown_mesh(&multi_addrs, multi_handles);

    if single_ok != jobs || multi_ok != jobs {
        return Err(ParseArgsError(format!(
            "cluster-bench lost jobs: single {single_ok}/{jobs}, cluster {multi_ok}/{jobs}"
        )));
    }
    let speedup = if multi_wall > 0.0 {
        single_wall / multi_wall
    } else {
        0.0
    };
    let doc = format!(
        "{{\"bench\":\"cluster\",\"jobs\":{jobs},\"warm\":{warm},\"cycles\":{cycles},\
         \"clients\":{clients},\"workers_per_node\":{workers},\
         \"single\":{{\"nodes\":1,\"wall_s\":{},\"jobs_per_s\":{}}},\
         \"cluster\":{{\"nodes\":{nodes},\"wall_s\":{},\"jobs_per_s\":{}}},\
         \"speedup\":{}}}",
        json_f64(single_wall),
        json_f64(jobs as f64 / single_wall.max(1e-9)),
        json_f64(multi_wall),
        json_f64(jobs as f64 / multi_wall.max(1e-9)),
        json_f64(speedup),
    );
    if args.flag("json") || args.get("out").is_none() {
        println!("{doc}");
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| ParseArgsError(format!("writing {path}: {e}")))?;
        eprintln!("wrote cluster benchmark report to {path}");
    }
    eprintln!(
        "1 node: {single_wall:.2}s ({:.2} jobs/s); {nodes} nodes: {multi_wall:.2}s \
         ({:.2} jobs/s); speedup {speedup:.2}x",
        jobs as f64 / single_wall.max(1e-9),
        jobs as f64 / multi_wall.max(1e-9),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peers_lists_split_and_trim() {
        assert_eq!(
            parse_peers("a:1, b:2 ,,c:3"),
            vec!["a:1".to_string(), "b:2".to_string(), "c:3".to_string()]
        );
        assert!(parse_peers("").is_empty());
    }

    #[test]
    fn cluster_config_picks_up_every_knob() {
        let args = Args::parse(
            "cluster --addr 127.0.0.1:9401 --advertise 10.0.0.1:9401 \
             --peers 10.0.0.2:9401,10.0.0.3:9401 --replicas 2 --vnodes 32 \
             --heartbeat-ms 100 --suspect-after 3 --dead-after 6 --workers 4"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let cfg = cluster_config_from(&args).unwrap();
        assert_eq!(cfg.serve.addr, "127.0.0.1:9401");
        assert_eq!(cfg.advertise.as_deref(), Some("10.0.0.1:9401"));
        assert_eq!(cfg.seeds.len(), 2);
        assert_eq!(cfg.replicas, 2);
        assert_eq!(cfg.vnodes, 32);
        assert_eq!(cfg.heartbeat, Duration::from_millis(100));
        assert_eq!(cfg.suspect_after, 3);
        assert_eq!(cfg.dead_after, 6);
        assert_eq!(cfg.serve.workers, 4);
    }
}
