//! Minimal dependency-free argument parsing for the `clognet` binary.
//!
//! Grammar: `clognet <command> [--key value]...` with `--key=value` also
//! accepted. Unknown keys are an error (no silent typo-swallowing).

use std::collections::BTreeMap;

/// Parsed command line: the subcommand plus its `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (`run`, `compare`, `sweep`, `list`, ...).
    pub command: String,
    opts: BTreeMap<String, String>,
}

/// Option keys that are boolean flags: `--json` / `--quick` / `--no-ff`
/// take no value (`--json=false` still works to switch one off
/// explicitly).
const FLAG_KEYS: &[&str] = &[
    "json",
    "quick",
    "no-ff",
    "canonical",
    "owner",
    "warm-start",
    "fabric",
    "adaptive",
];

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl std::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

impl Args {
    /// Parse raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Fails on a missing subcommand, a dangling `--key` with no value,
    /// or positional arguments after the subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ParseArgsError> {
        let mut it = raw.into_iter();
        let command = it
            .next()
            .ok_or_else(|| ParseArgsError("missing subcommand; try `clognet help`".into()))?;
        let mut opts = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(body) = tok.strip_prefix("--") else {
                return Err(ParseArgsError(format!(
                    "unexpected positional argument `{tok}`"
                )));
            };
            if let Some((k, v)) = body.split_once('=') {
                opts.insert(k.to_string(), v.to_string());
            } else if FLAG_KEYS.contains(&body) {
                opts.insert(body.to_string(), "true".to_string());
            } else {
                let v = it
                    .next()
                    .ok_or_else(|| ParseArgsError(format!("option --{body} is missing a value")))?;
                opts.insert(body.to_string(), v);
            }
        }
        Ok(Args { command, opts })
    }

    /// Build an `Args` directly from a command and an option map — the
    /// entry point for options that arrive over the wire (a service
    /// job spec) rather than from a command line.
    pub fn from_opts(command: &str, opts: &BTreeMap<String, String>) -> Self {
        Args {
            command: command.to_string(),
            opts: opts.clone(),
        }
    }

    /// Fetch an option as a string.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Fetch with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Whether a boolean flag is set (`--json`, `--json=true`, ...).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true" | "1" | "yes"))
    }

    /// Fetch and parse a number.
    ///
    /// # Errors
    ///
    /// Fails if present but unparseable.
    pub fn get_num<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{key} {v}: not a valid number"))),
        }
    }

    /// Error on any option not in `allowed` (typo protection).
    ///
    /// # Errors
    ///
    /// Lists the offending option and the allowed set.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ParseArgsError> {
        for k in self.opts.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ParseArgsError(format!(
                    "unknown option --{k}; allowed: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Error when both options of any listed pair are present —
    /// mutually exclusive output selectors like `--json` vs `--csv`.
    ///
    /// A boolean flag explicitly switched off (`--json=false`) does not
    /// count as present.
    ///
    /// # Errors
    ///
    /// Names the conflicting pair.
    pub fn reject_conflicts(&self, pairs: &[(&str, &str)]) -> Result<(), ParseArgsError> {
        let present = |key: &str| {
            if FLAG_KEYS.contains(&key) {
                self.flag(key)
            } else {
                self.get(key).is_some()
            }
        };
        for &(a, b) in pairs {
            if present(a) && present(b) {
                return Err(ParseArgsError(format!(
                    "--{a} and --{b} are mutually exclusive; pick one"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ParseArgsError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = parse("run --gpu HS --cycles 1000 --scheme=dr").unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("gpu"), Some("HS"));
        assert_eq!(a.get("scheme"), Some("dr"));
        assert_eq!(a.get_num("cycles", 0u64).unwrap(), 1000);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("run").unwrap();
        assert_eq!(a.get_or("gpu", "HS"), "HS");
        assert_eq!(a.get_num("cycles", 42u64).unwrap(), 42);
    }

    #[test]
    fn fabric_is_a_bare_flag() {
        // `bench --fabric --out X` must not eat `--out` as a value.
        let a = parse("bench --fabric --out BENCH_fabric.json").unwrap();
        assert!(a.flag("fabric"));
        assert_eq!(a.get("out"), Some("BENCH_fabric.json"));
    }

    #[test]
    fn rejects_danglers_and_positionals() {
        assert!(parse("run --gpu").is_err());
        assert!(parse("run HS").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_unknown_options() {
        let a = parse("run --gpuu HS").unwrap();
        assert!(a.reject_unknown(&["gpu"]).is_err());
        let a = parse("run --gpu HS").unwrap();
        assert!(a.reject_unknown(&["gpu"]).is_ok());
    }

    #[test]
    fn bad_numbers_error() {
        let a = parse("run --cycles ten").unwrap();
        assert!(a.get_num("cycles", 0u64).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = parse("run --json --gpu HS").unwrap();
        assert!(a.flag("json"));
        assert_eq!(a.get("gpu"), Some("HS"));
        assert!(!parse("run").unwrap().flag("json"));
        assert!(!parse("run --json=false").unwrap().flag("json"));
        // Trailing flag must not eat a value.
        assert!(parse("run --json").unwrap().flag("json"));
    }

    #[test]
    fn conflicting_output_options_are_rejected() {
        let a = parse("run --json --csv out.csv").unwrap();
        let err = a.reject_conflicts(&[("json", "csv")]).unwrap_err();
        assert!(err.0.contains("--json"), "names the pair: {err}");
        assert!(err.0.contains("--csv"), "names the pair: {err}");
        assert!(err.0.contains("mutually exclusive"), "clear error: {err}");
    }

    #[test]
    fn non_conflicting_invocations_pass() {
        assert!(parse("run --json")
            .unwrap()
            .reject_conflicts(&[("json", "csv")])
            .is_ok());
        assert!(parse("run --csv out.csv")
            .unwrap()
            .reject_conflicts(&[("json", "csv")])
            .is_ok());
        assert!(parse("run")
            .unwrap()
            .reject_conflicts(&[("json", "csv")])
            .is_ok());
        // A flag switched off explicitly is not present.
        assert!(parse("run --json=false --csv out.csv")
            .unwrap()
            .reject_conflicts(&[("json", "csv")])
            .is_ok());
    }

    #[test]
    fn from_opts_round_trips_the_option_map() {
        let mut opts = BTreeMap::new();
        opts.insert("gpu".to_string(), "MM".to_string());
        opts.insert("scheme".to_string(), "dr".to_string());
        let a = Args::from_opts("run", &opts);
        assert_eq!(a.command, "run");
        assert_eq!(a.get("gpu"), Some("MM"));
        assert_eq!(a.get("scheme"), Some("dr"));
        assert_eq!(a.get("cpu"), None);
    }
}
