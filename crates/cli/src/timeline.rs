//! ASCII rendering of the per-epoch clog timeline (`clognet timeline`).
//!
//! Each telemetry series becomes one sparkline row; time runs left to
//! right, one column per epoch (max-pooled down when the run has more
//! epochs than the terminal has columns). The point is to make Fig. 5b
//! legible in a terminal: clog episodes show up as dark bands on the
//! `blocked` rows that delegation visibly shortens.

use clognet_telemetry::{Episode, EpochSampler};

/// Shade ramp from idle to saturated.
const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Map `v` in `[0, max]` onto the shade ramp (saturating).
fn shade(v: f64, max: f64) -> char {
    // NaN or non-positive inputs render as idle.
    if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || max.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return SHADES[0];
    }
    let i = ((v / max) * (SHADES.len() - 1) as f64).ceil() as usize;
    SHADES[i.min(SHADES.len() - 1)]
}

/// Downsample `values` to at most `width` columns by max-pooling, then
/// shade each column against `max` (pass the natural ceiling for rates
/// in `[0, 1]`, or the row maximum for unbounded series).
pub fn spark_row(values: &[f64], width: usize, max: f64) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let cols = width.min(values.len());
    let mut out = String::with_capacity(cols);
    for c in 0..cols {
        let lo = c * values.len() / cols;
        let hi = ((c + 1) * values.len() / cols).max(lo + 1);
        let pooled = values[lo..hi].iter().copied().fold(0.0f64, f64::max);
        out.push(shade(pooled, max));
    }
    out
}

/// One labelled sparkline line, annotated with the row's peak value.
fn row(label: &str, values: &[f64], width: usize, cap: Option<f64>) -> String {
    let peak = values.iter().copied().fold(0.0f64, f64::max);
    let max = cap.unwrap_or(peak);
    format!(
        "{label:<22} |{}| peak {peak:.2}",
        spark_row(values, width, max)
    )
}

/// Render the whole timeline: chip-wide rows, per-memory-node blocked
/// fractions, and the detected clog-episode list.
pub fn render(
    sampler: &EpochSampler,
    episodes: &[Episode],
    epoch_len: u64,
    width: usize,
) -> String {
    let mut out = String::new();
    let retained = sampler.retained();
    let first = sampler.first_epoch();
    out.push_str(&format!(
        "epochs {first}..{} ({epoch_len} cycles each; {} committed)\n\n",
        first + retained as u64,
        sampler.epochs_committed()
    ));
    // Chip-wide rows first: rates get a natural [0,1] ceiling, counts
    // are scaled to their own peak.
    let chip: [(&str, Option<f64>); 7] = [
        ("blocked_nodes", None),
        ("mem_reply_link_util_max", Some(1.0)),
        ("delegated", None),
        ("dram_row_hit_rate", Some(1.0)),
        ("gpu_ipc", None),
        ("cpu_ipc", None),
        ("dnf_bounce", None),
    ];
    for (name, cap) in chip {
        if let Some(id) = sampler.find(name) {
            out.push_str(&row(name, &sampler.values(id), width, cap));
            out.push('\n');
        }
    }
    out.push('\n');
    // Per-memory-node blocked fraction: the clog bands of Fig. 5b.
    for i in 0.. {
        let Some(id) = sampler.find(&format!("mem{i}_blocked_frac")) else {
            break;
        };
        out.push_str(&row(
            &format!("mem{i} blocked"),
            &sampler.values(id),
            width,
            Some(1.0),
        ));
        out.push('\n');
    }
    out.push('\n');
    out.push_str(&render_episodes(episodes));
    out
}

/// The detected clog-episode list, longest first (top 12).
pub fn render_episodes(episodes: &[Episode]) -> String {
    if episodes.is_empty() {
        return "no clog episodes detected\n".to_string();
    }
    let mut by_len: Vec<&Episode> = episodes.iter().collect();
    by_len.sort_by_key(|e| std::cmp::Reverse(e.duration()));
    let total: u64 = episodes.iter().map(Episode::duration).sum();
    let mut out = format!(
        "{} clog episodes detected ({} blocked cycles total); longest first:\n",
        episodes.len(),
        total
    );
    for e in by_len.iter().take(12) {
        out.push_str(&format!(
            "  mem{:<3} @ cycle {:<8} {:>6} cycles, peak depth {:>3}, {:>5} flits shed\n",
            e.node,
            e.start,
            e.duration(),
            e.peak_depth,
            e.flits_shed
        ));
    }
    if by_len.len() > 12 {
        out.push_str(&format!("  ... and {} more\n", by_len.len() - 12));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_telemetry::EpisodeDetector;

    #[test]
    fn spark_row_pools_and_shades() {
        let v: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        let s = spark_row(&v, 10, 1.0);
        assert_eq!(s.chars().count(), 10);
        // Monotone input → non-decreasing shades, ending saturated.
        assert_eq!(s.chars().last(), Some('@'));
        let ranks: Vec<usize> = s
            .chars()
            .map(|c| SHADES.iter().position(|&x| x == c).unwrap())
            .collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zero_series_renders_blank() {
        let s = spark_row(&[0.0; 16], 8, 1.0);
        assert!(s.chars().all(|c| c == ' '));
    }

    #[test]
    fn episode_list_is_longest_first() {
        let mut d = EpisodeDetector::new();
        d.enter(0, 10);
        d.exit(0, 15);
        d.enter(1, 100);
        d.exit(1, 400);
        let text = render_episodes(d.episodes());
        let pos_long = text.find("mem1").unwrap();
        let pos_short = text.find("mem0").unwrap();
        assert!(pos_long < pos_short);
        assert!(text.contains("2 clog episodes"));
    }
}
