//! # clognet-cli
//!
//! Library half of the `clognet` command-line driver: argument parsing,
//! option-to-configuration translation, and report formatting. The thin
//! `main.rs` wires these to stdin/stdout so every piece is unit-testable.

pub mod args;
pub mod cluster_cmd;
pub mod config;
pub mod driver;
pub mod fuzz_cmd;
pub mod report;
pub mod serve_cmd;
pub mod timeline;

pub use args::{Args, ParseArgsError};
pub use config::{config_from, parse_layout, parse_scheme, CONFIG_KEYS, CONTROL_KEYS};
