//! Human-readable and JSON report formatting for the CLI.

use clognet_core::Report;
use clognet_energy::{energy, NetShape};
use clognet_proto::{Scheme, Topology};
use clognet_telemetry::export::{json_escape, json_f64};

/// Print a single run's report.
pub fn print_report(scheme: Scheme, r: &Report) {
    println!(
        "{} + {} under {} ({} measured cycles)",
        r.gpu_bench,
        r.cpu_bench,
        scheme.label(),
        r.cycles
    );
    println!("  GPU IPC                : {:.2}", r.gpu_ipc);
    println!("  GPU L1 miss rate       : {:.1}%", r.l1_miss_rate * 100.0);
    println!(
        "  GPU rx data rate       : {:.3} flits/cycle/core",
        r.gpu_rx_rate
    );
    println!(
        "  CPU performance        : {:.3} (1.0 = unloaded)",
        r.cpu_performance
    );
    println!("  CPU network latency    : {:.1} cycles", r.cpu_net_latency);
    println!("  CPU memory latency     : {:.1} cycles", r.cpu_mem_latency);
    println!(
        "  memory nodes blocked   : {:.1}%",
        r.mem_blocked_rate * 100.0
    );
    println!(
        "  busiest mem reply link : {:.1}% utilized",
        r.mem_reply_link_util * 100.0
    );
    println!(
        "  inter-core locality    : {:.1}% of misses",
        r.oracle_locality * 100.0
    );
    if r.delegations > 0 {
        let b = r.breakdown;
        println!(
            "  delegations            : {} ({} remote hits, {} remote misses; accuracy {:.1}%)",
            r.delegations,
            b.remote_hit,
            b.remote_miss,
            b.remote_hit_rate() * 100.0
        );
    }
    if r.probes_sent > 0 {
        println!("  RP probes sent         : {}", r.probes_sent);
    }
    let area = 2.0
        * NetShape {
            topology: Topology::Mesh,
            width: 8,
            height: 8,
            channel_bytes: r.channel_bytes,
            vcs: 2,
            vc_buf_flits: 4,
        }
        .area_mm2();
    let e = energy(r.flit_hops, r.channel_bytes, area, r.cycles);
    println!(
        "  NoC energy             : {:.2} uJ dynamic / {:.2} uJ total",
        e.noc_dynamic_j * 1e6,
        e.total_j() * 1e6
    );
}

/// Print the scheme-comparison table.
pub fn print_comparison(rows: &[(Scheme, Report)]) {
    let base = &rows[0].1;
    println!(
        "{:<10} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "scheme", "GPU IPC", "vs base", "CPU perf", "CPU lat", "blocked%", "rx rate", "delegated"
    );
    for (scheme, r) in rows {
        println!(
            "{:<10} {:>9.2} {:>7.1}% {:>9.3} {:>9.1} {:>8.1}% {:>9.3} {:>10}",
            scheme.label(),
            r.gpu_ipc,
            (r.gpu_ipc / base.gpu_ipc - 1.0) * 100.0,
            r.cpu_performance,
            r.cpu_net_latency,
            r.mem_blocked_rate * 100.0,
            r.gpu_rx_rate,
            r.delegations
        );
    }
    println!(
        "\npaper: Delegated Replies +25.7% GPU over baseline, +14.2% over RP, and\n\
         lower CPU network latency via un-blocked memory nodes."
    );
}

/// One run's report as a flat JSON object (for `--json`).
pub fn report_json(scheme: Scheme, r: &Report) -> String {
    let mut o = String::from("{");
    let strs = [
        ("scheme", scheme.label().to_string()),
        ("gpu_bench", r.gpu_bench.clone()),
        ("cpu_bench", r.cpu_bench.clone()),
    ];
    for (k, v) in strs {
        o.push_str(&format!("\"{k}\":\"{}\",", json_escape(&v)));
    }
    let ints = [
        ("cycles", r.cycles),
        ("delegations", r.delegations),
        ("probes_sent", r.probes_sent),
        ("request_packets", r.request_packets),
        ("flit_hops", r.flit_hops),
        ("remote_hit", r.breakdown.remote_hit),
        ("remote_miss", r.breakdown.remote_miss),
    ];
    for (k, v) in ints {
        o.push_str(&format!("\"{k}\":{v},"));
    }
    let floats = [
        ("gpu_ipc", r.gpu_ipc),
        ("cpu_performance", r.cpu_performance),
        ("cpu_mem_latency", r.cpu_mem_latency),
        ("cpu_net_latency", r.cpu_net_latency),
        ("gpu_rx_rate", r.gpu_rx_rate),
        ("gpu_tx_rate", r.gpu_tx_rate),
        ("mem_blocked_rate", r.mem_blocked_rate),
        ("mem_reply_link_util", r.mem_reply_link_util),
        ("oracle_locality", r.oracle_locality),
        ("l1_miss_rate", r.l1_miss_rate),
        ("frq_same_line_fraction", r.frq_same_line_fraction),
        ("remote_hit_rate", r.breakdown.remote_hit_rate()),
    ];
    for (k, v) in floats {
        o.push_str(&format!("\"{k}\":{},", json_f64(v)));
    }
    o.pop();
    o.push('}');
    o
}

/// A set of per-scheme reports as a JSON array (for `compare --json`).
pub fn comparison_json(rows: &[(Scheme, Report)]) -> String {
    let items: Vec<String> = rows.iter().map(|(s, r)| report_json(*s, r)).collect();
    format!("[{}]\n", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut sys =
            clognet_core::System::new(clognet_proto::SystemConfig::default(), "HS", "bodytrack");
        sys.run(2_000);
        sys.report()
    }

    #[test]
    fn report_json_is_flat_and_balanced() {
        let j = report_json(Scheme::Baseline, &sample_report());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"gpu_ipc\":"));
        assert!(j.contains("\"scheme\":\"Baseline\""));
        assert!(!j.contains(",}"), "no trailing comma: {j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn comparison_json_is_an_array() {
        let r = sample_report();
        let j = comparison_json(&[(Scheme::Baseline, r.clone()), (Scheme::DelegatedReplies, r)]);
        assert!(j.starts_with('[') && j.ends_with("]\n"));
        assert_eq!(j.matches("\"scheme\"").count(), 2);
    }
}
