//! `clognet fuzz`: deterministic scenario fuzzing of the engine-
//! equivalence contract.
//!
//! Each seeded case (see [`clognet_control::fuzz::ScenarioGen`]) is a
//! random-but-valid config + workload + scheme + fabric + control
//! combination. The driver runs every case through the engine modes in
//! lockstep — fast-forward on (the reference), the per-cycle loop
//! (`--no-ff`), and the sharded engine when the case shards — and
//! asserts the reports are identical. A mismatch is minimized greedily
//! (drop one dimension at a time while the failure persists) and
//! printed as a single `clognet run` reproducer line.

use crate::args::{Args, ParseArgsError};
use crate::driver::measure;
use clognet_control::fuzz::{FuzzCase, ScenarioGen};
use clognet_core::Report;

/// Run one case through every applicable engine mode. `Ok` carries the
/// reference report; `Err` names the leg that diverged.
fn run_case(case: &FuzzCase) -> Result<Report, String> {
    let leg = |ff: bool, shards: usize| {
        measure(
            case.cfg.clone(),
            &case.gpu,
            &case.cpu,
            case.warm,
            case.cycles,
            ff,
            shards,
        )
    };
    let reference = leg(true, 1);
    if leg(false, 1) != reference {
        return Err("--no-ff (per-cycle reference loop)".into());
    }
    if case.shards > 1 && leg(true, case.shards) != reference {
        return Err(format!("--shards {} (sharded engine)", case.shards));
    }
    Ok(reference)
}

/// Greedily shrink a failing case: apply one simplification at a time
/// and keep it only when the case still fails, repeating until a full
/// pass removes nothing. Every candidate preserves validity by
/// construction (the generator's own invariants).
fn minimize(mut case: FuzzCase) -> FuzzCase {
    use clognet_proto::{LayoutKind, Scheme, SystemConfig, Topology};
    type Simplify = fn(&mut FuzzCase) -> bool;
    // Each candidate returns false when it is already a no-op (so the
    // loop does not re-run an unchanged case).
    let candidates: &[Simplify] = &[
        |c| c.cfg.fabric.take().is_some(),
        |c| c.cfg.control.take().is_some(),
        |c| c.cfg.noc.virtual_nets.take().is_some(),
        |c| {
            if c.cfg.scheme == Scheme::Baseline {
                return false;
            }
            c.cfg.scheme = Scheme::Baseline;
            true
        },
        |c| {
            if c.cfg.noc.topology == Topology::Mesh {
                return false;
            }
            c.cfg.noc.topology = Topology::Mesh;
            true
        },
        |c| {
            if c.cfg.layout == LayoutKind::Baseline {
                return false;
            }
            c.cfg.layout = LayoutKind::Baseline;
            let (req, rep) = SystemConfig::best_routing_for(c.cfg.layout);
            c.cfg.noc.routing_request = req;
            c.cfg.noc.routing_reply = rep;
            true
        },
        |c| {
            if c.cfg.noc.mem_inj_buf_pkts == 16 {
                return false;
            }
            c.cfg.noc.mem_inj_buf_pkts = 16;
            true
        },
        |c| {
            if c.shards <= 2 {
                return false;
            }
            c.shards = 2;
            true
        },
        |c| {
            if c.warm < 200 {
                return false;
            }
            c.warm /= 2;
            true
        },
        |c| {
            if c.cycles < 200 {
                return false;
            }
            c.cycles /= 2;
            true
        },
    ];
    loop {
        let mut shrunk = false;
        for candidate in candidates {
            let mut trial = case.clone();
            if !candidate(&mut trial) {
                continue;
            }
            if run_case(&trial).is_err() {
                case = trial;
                shrunk = true;
            }
        }
        if !shrunk {
            return case;
        }
    }
}

/// Drive `cases` seeded scenarios through the lockstep engine check.
///
/// # Errors
///
/// Bad options, or an engine divergence (after minimization, with the
/// reproducer line printed).
pub fn cmd_fuzz(args: &Args) -> Result<(), ParseArgsError> {
    args.reject_unknown(&["seed", "cases"])?;
    let seed = args.get_num("seed", 1u64)?;
    let cases = args.get_num("cases", 25usize)?;
    if cases == 0 {
        return Err(ParseArgsError("--cases must be at least 1".into()));
    }
    let gpu_profiles = clognet_workloads::gpu_benchmarks();
    let cpu_profiles = clognet_workloads::cpu_benchmarks();
    let gpus: Vec<&str> = gpu_profiles.iter().map(|p| p.name).collect();
    let cpus: Vec<&str> = cpu_profiles.iter().map(|p| p.name).collect();
    let mut gen = ScenarioGen::new(seed, &gpus, &cpus);
    for i in 0..cases {
        let case = gen.next_case();
        match run_case(&case) {
            Ok(report) => eprintln!(
                "case {:>3}/{cases}: ok  {}+{} {} shards={} ipc={:.2}",
                i + 1,
                case.gpu,
                case.cpu,
                case.cfg.scheme.label(),
                case.shards,
                report.gpu_ipc
            ),
            Err(leg) => {
                eprintln!(
                    "case {:>3}/{cases}: FAIL — {leg} diverged from the reference; minimizing...",
                    i + 1
                );
                let small = minimize(case);
                let leg = run_case(&small).expect_err("minimize preserves the failure");
                println!("reproducer (diverging leg: {leg}):");
                println!("  {}", small.repro_line());
                return Err(ParseArgsError(format!(
                    "fuzz seed {seed} case {i}: engine modes disagree (reproducer above)"
                )));
            }
        }
    }
    println!("fuzz: {cases} cases from seed {seed}, all engine modes byte-identical");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_few_seeded_cases_pass_the_lockstep_check() {
        let gpus = ["HS", "NN"];
        let cpus = ["bodytrack", "swaptions"];
        let mut gen = ScenarioGen::new(42, &gpus, &cpus);
        for _ in 0..3 {
            let mut case = gen.next_case();
            // Keep the unit test quick; the CI smoke runs full budgets.
            case.warm = case.warm.min(300);
            case.cycles = case.cycles.min(500);
            assert!(run_case(&case).is_ok(), "{}", case.repro_line());
        }
    }

    #[test]
    fn fuzz_rejects_bad_options() {
        let parse = |s: &str| Args::parse(s.split_whitespace().map(String::from)).unwrap();
        assert!(cmd_fuzz(&parse("fuzz --cases 0")).is_err());
        assert!(cmd_fuzz(&parse("fuzz --bogus 1")).is_err());
    }
}
