//! The service-side subcommands: `serve`, `submit`, `batch`, and
//! `fingerprint`.
//!
//! [`SimHandler`] is the bridge between `clognet-serve` (which knows
//! nothing about simulators) and `clognet-core`: it resolves a wire
//! [`JobSpec`] through the same option vocabulary as `clognet run`,
//! fingerprints the *resolved* configuration (so `--scheme dr` and
//! `--scheme delegated-replies` share a cache entry), and renders
//! reports through [`report::report_json`] — which is what guarantees a
//! `submit` prints byte-identical output to an inline `clognet run
//! --json` of the same job.

use crate::args::{Args, ParseArgsError};
use crate::cluster_cmd::{parse_peers, CLUSTER_KEYS};
use crate::config::{config_from, CONFIG_KEYS};
use crate::report;
use clognet_core::{MultiChipSystem, Snapshot, TickEngine};
use clognet_proto::{
    canonical_job, fingerprint_hex, job_fingerprint, snapshot_key, HashRing, SystemConfig,
};
use clognet_serve::client::{Client, RetryPolicy};
use clognet_serve::json::Json;
use clognet_serve::server::{JobError, JobHandler, ServeConfig, Server};
use clognet_serve::wire::{ErrorCode, JobSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default service endpoint shared by `serve`, `submit`, and `batch`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:9347";

/// Option keys a job may carry (the `clognet run` configuration
/// vocabulary, minus the workload names which travel as dedicated
/// fields, plus the execution-mode knobs `no-ff` and `shards`).
fn job_opt_keys() -> Vec<&'static str> {
    let mut keys: Vec<&'static str> = CONFIG_KEYS
        .iter()
        .copied()
        .filter(|k| !matches!(*k, "gpu" | "cpu"))
        .collect();
    keys.extend_from_slice(&["no-ff", "shards"]);
    keys
}

/// Cycles simulated between deadline checks while a job runs.
const DEADLINE_CHUNK: u64 = 2_000;

/// The real simulation behind the service.
pub struct SimHandler;

impl SimHandler {
    /// Resolve a wire spec into a validated `(config, fast-forward,
    /// shards)` triple, rejecting unknown benchmarks, options, and
    /// shard counts that cannot partition the topology.
    fn resolve(spec: &JobSpec) -> Result<(SystemConfig, bool, usize), JobError> {
        if clognet_workloads::gpu_benchmark(&spec.gpu).is_none() {
            return Err(JobError::bad_request(format!(
                "unknown GPU benchmark `{}` (see `clognet list`)",
                spec.gpu
            )));
        }
        if clognet_workloads::cpu_benchmark(&spec.cpu).is_none() {
            return Err(JobError::bad_request(format!(
                "unknown CPU benchmark `{}` (see `clognet list`)",
                spec.cpu
            )));
        }
        let args = Args::from_opts("run", &spec.opts);
        args.reject_unknown(&job_opt_keys())
            .map_err(|e| JobError::bad_request(e.0))?;
        let cfg = config_from(&args).map_err(|e| JobError::bad_request(e.0))?;
        let shards = args
            .get_num("shards", 1usize)
            .map_err(|e| JobError::bad_request(e.0))?;
        clognet_core::validate_shards(&cfg, shards)
            .map_err(|e| JobError::bad_request(format!("shards: {e}")))?;
        clognet_core::validate_fabric(&cfg)
            .map_err(|e| JobError::bad_request(format!("chips/fabric: {e}")))?;
        Ok((cfg, !args.flag("no-ff"), shards))
    }
}

impl JobHandler for SimHandler {
    fn fingerprint(&self, spec: &JobSpec) -> Result<u64, JobError> {
        let (cfg, _, _) = Self::resolve(spec)?;
        // Execution-mode knobs are deliberately excluded: reports are
        // byte-identical with fast-forward on or off and at any shard
        // count (the CI equivalence smokes), so all spellings should
        // share one cache entry.
        Ok(job_fingerprint(
            &cfg,
            &spec.gpu,
            &spec.cpu,
            spec.warm,
            spec.cycles,
        ))
    }

    fn run(&self, spec: &JobSpec, deadline: Instant) -> Result<String, JobError> {
        self.run_with_snapshot(spec, deadline)
            .map(|(report, _)| report)
    }

    fn snapshot_key(&self, spec: &JobSpec) -> Option<u64> {
        if spec.warm == 0 {
            return None; // No warmup prefix worth caching.
        }
        let (cfg, _, _) = Self::resolve(spec).ok()?;
        // Like the fingerprint, the key excludes execution-mode knobs
        // (`no-ff`, `shards`): a sharded submit must hit the snapshot a
        // sequential one cached, and vice versa.
        Some(snapshot_key(&cfg, &spec.gpu, &spec.cpu, spec.warm))
    }

    fn run_with_snapshot(
        &self,
        spec: &JobSpec,
        deadline: Instant,
    ) -> Result<(String, Option<Vec<u8>>), JobError> {
        let (cfg, ff, shards) = Self::resolve(spec)?;
        let scheme = cfg.scheme;
        let mut sys = MultiChipSystem::new(cfg, &spec.gpu, &spec.cpu);
        sys.set_fast_forward(ff);
        if shards > 1 {
            sys.set_tick_engine(TickEngine::Sharded(shards))
                .expect("shard count validated in resolve");
        }
        chunked(&mut sys, spec.warm, deadline)?;
        let snap = (spec.warm > 0).then(|| sys.snapshot().into_bytes());
        sys.reset_stats();
        chunked(&mut sys, spec.cycles, deadline)?;
        Ok((report::report_json(scheme, &sys.report()), snap))
    }

    fn run_from_snapshot(
        &self,
        spec: &JobSpec,
        snapshot: &[u8],
        deadline: Instant,
    ) -> Result<String, JobError> {
        let (cfg, ff, shards) = Self::resolve(spec)?;
        let scheme = cfg.scheme;
        // A cache entry that fails to restore (corrupt bytes, a version
        // we no longer read) must never fail the job — snapshots are an
        // optimization; fall back to the full run.
        let restored = Snapshot::from_bytes(snapshot.to_vec())
            .ok()
            .filter(|snap| {
                // Belt-and-braces identity check: even a key collision
                // must not resume the wrong simulation.
                snap.config() == &cfg
                    && snap.gpu_bench() == spec.gpu
                    && snap.cpu_bench() == spec.cpu
                    && snap.cycle() == spec.warm
            })
            .and_then(|snap| MultiChipSystem::restore(&snap).ok());
        let Some(mut sys) = restored else {
            return self.run(spec, deadline);
        };
        sys.set_fast_forward(ff);
        if shards > 1 {
            sys.set_tick_engine(TickEngine::Sharded(shards))
                .expect("shard count validated in resolve");
        }
        sys.reset_stats();
        chunked(&mut sys, spec.cycles, deadline)?;
        Ok(report::report_json(scheme, &sys.report()))
    }
}

/// Simulate `total` cycles in [`DEADLINE_CHUNK`]-sized steps, checking
/// the wall-time deadline between chunks.
fn chunked(sys: &mut MultiChipSystem, total: u64, deadline: Instant) -> Result<(), JobError> {
    let mut remaining = total;
    while remaining > 0 {
        if Instant::now() >= deadline {
            return Err(JobError {
                code: ErrorCode::Timeout,
                message: "job exceeded its wall-time limit".into(),
            });
        }
        let step = remaining.min(DEADLINE_CHUNK);
        sys.run(step);
        remaining -= step;
    }
    Ok(())
}

/// Build a [`JobSpec`] from `submit`-style CLI options.
fn spec_from_args(args: &Args) -> Result<JobSpec, ParseArgsError> {
    let mut spec = JobSpec::new(args.get_or("gpu", "HS"), args.get_or("cpu", "bodytrack"));
    spec.warm = args.get_num("warm", spec.warm)?;
    spec.cycles = args.get_num("cycles", spec.cycles)?;
    for key in job_opt_keys() {
        if let Some(v) = args.get(key) {
            spec.opts.insert(key.to_string(), v.to_string());
        }
    }
    Ok(spec)
}

/// Connect-retry policy from `--retries` / `--retry-ms` / `--seed`.
fn policy_from_args(args: &Args) -> Result<RetryPolicy, ParseArgsError> {
    let default = RetryPolicy::default();
    Ok(RetryPolicy {
        attempts: args.get_num("retries", default.attempts)?,
        base_ms: args.get_num("retry-ms", default.base_ms)?,
        cap_ms: default.cap_ms,
        seed: args.get_num("seed", default.seed)?,
    })
}

/// Connect to `--addr`, or to the first reachable node in a `--peers`
/// failover list. `fp` (when the request is a job) seeds per-connection
/// retry jitter so a thundering herd of resubmits spreads out.
fn connect(args: &Args, fp: Option<u64>) -> Result<Client, ParseArgsError> {
    let base = policy_from_args(args)?;
    let policy = match fp {
        Some(fp) => base.for_fingerprint(fp),
        None => base,
    };
    let mut targets: Vec<String> = args.get("peers").map(parse_peers).unwrap_or_default();
    if let Some(addr) = args.get("addr") {
        targets.insert(0, addr.to_string());
    }
    if targets.is_empty() {
        targets.push(DEFAULT_ADDR.to_string());
    }
    let mut last_err = String::new();
    for addr in &targets {
        match Client::connect(addr, &policy) {
            Ok(client) => return Ok(client),
            Err(e) => last_err = format!("connecting to {addr}: {e}"),
        }
    }
    Err(ParseArgsError(last_err))
}

/// `clognet serve`: run the service in the foreground until a client
/// sends `shutdown`.
///
/// # Errors
///
/// Bad options or a failed bind.
pub fn cmd_serve(args: &Args) -> Result<(), ParseArgsError> {
    // A service asked to join peers (or to keep replicas) is a cluster
    // node: same wire protocol, plus membership, sharding, and
    // replication. One flag turns a single-node deployment into a mesh.
    if args.get("peers").is_some() || args.get("replicas").is_some() {
        args.reject_unknown(CLUSTER_KEYS)?;
        return crate::cluster_cmd::cmd_cluster(args);
    }
    args.reject_unknown(&[
        "addr",
        "workers",
        "queue",
        "cache",
        "snap-cache",
        "max-cycles",
        "timeout-ms",
        "drain-ms",
    ])?;
    let default = ServeConfig::default();
    let cfg = ServeConfig {
        addr: args.get_or("addr", DEFAULT_ADDR).to_string(),
        workers: args.get_num("workers", default.workers)?.max(1),
        queue_cap: args.get_num("queue", default.queue_cap)?.max(1),
        cache_cap: args.get_num("cache", default.cache_cap)?,
        snap_cache_cap: args.get_num("snap-cache", default.snap_cache_cap)?,
        max_job_cycles: args.get_num("max-cycles", default.max_job_cycles)?,
        job_timeout: Duration::from_millis(
            args.get_num("timeout-ms", default.job_timeout.as_millis() as u64)?,
        ),
        drain_timeout: Duration::from_millis(
            args.get_num("drain-ms", default.drain_timeout.as_millis() as u64)?,
        ),
    };
    let workers = cfg.workers;
    let server = Server::bind(cfg, Arc::new(SimHandler))
        .map_err(|e| ParseArgsError(format!("binding service socket: {e}")))?;
    eprintln!(
        "clognet-serve listening on {} ({} workers); stop with \
         `clognet submit --op shutdown`",
        server.local_addr(),
        workers
    );
    server
        .run()
        .map_err(|e| ParseArgsError(format!("serve loop failed: {e}")))
}

/// `clognet submit`: send one request to a running service. `--op run`
/// (the default) prints the report to stdout byte-identically to an
/// inline `clognet run --json`; the cache verdict goes to stderr.
///
/// # Errors
///
/// Bad options, connection failure, or a server-side rejection.
pub fn cmd_submit(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = job_opt_keys();
    keys.extend_from_slice(&[
        "gpu", "cpu", "warm", "cycles", "addr", "peers", "op", "retries", "retry-ms",
    ]);
    args.reject_unknown(&keys)?;
    match args.get_or("op", "run") {
        "run" => {
            let spec = spec_from_args(args)?;
            // Fingerprint client-side (when the spec resolves) so retry
            // jitter is derived from the job, not shared by every
            // client; an unresolvable spec still travels to the server
            // for its authoritative structured error.
            let fp = SimHandler.fingerprint(&spec).ok();
            let mut client = connect(args, fp)?;
            let result = client
                .submit(&spec)
                .map_err(|e| ParseArgsError(e.to_string()))?;
            eprintln!(
                "fingerprint {} (cache {})",
                result.fingerprint,
                if result.cache_hit { "hit" } else { "miss" }
            );
            println!("{}", result.report);
        }
        "ping" => {
            connect(args, None)?
                .ping()
                .map_err(|e| ParseArgsError(e.to_string()))?;
            println!("pong");
        }
        "stats" => {
            let stats = connect(args, None)?
                .stats()
                .map_err(|e| ParseArgsError(e.to_string()))?;
            println!("{stats}");
        }
        "cluster-stats" => {
            let line = connect(args, None)?
                .request_line("{\"op\":\"cluster-stats\"}")
                .map_err(|e| ParseArgsError(e.to_string()))?;
            println!("{line}");
        }
        "shutdown" => {
            connect(args, None)?
                .shutdown()
                .map_err(|e| ParseArgsError(e.to_string()))?;
            eprintln!("server is draining");
        }
        other => {
            return Err(ParseArgsError(format!(
                "unknown --op `{other}` (run|ping|stats|cluster-stats|shutdown)"
            )))
        }
    }
    Ok(())
}

/// `clognet batch`: submit every job in an NDJSON file (one job object
/// per line, `clognet run` option vocabulary) over one connection and
/// emit one response line per job — to stdout, or to `--out`.
///
/// # Errors
///
/// Bad options, an unreadable/unparseable job file, or transport
/// failure. Per-job server rejections are *not* errors; they appear as
/// their structured error lines in the output.
pub fn cmd_batch(args: &Args) -> Result<(), ParseArgsError> {
    args.reject_unknown(&["addr", "peers", "file", "out", "retries", "retry-ms"])?;
    let path = args
        .get("file")
        .ok_or_else(|| ParseArgsError("batch needs --file <jobs.ndjson>".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseArgsError(format!("reading {path}: {e}")))?;
    let mut specs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| ParseArgsError(format!("{path}:{}: {e}", i + 1)))?;
        let spec =
            JobSpec::from_json(&v).map_err(|e| ParseArgsError(format!("{path}:{}: {e}", i + 1)))?;
        specs.push(spec);
    }
    let mut client = connect(args, None)?;
    let mut out = String::new();
    let mut hits = 0usize;
    for spec in &specs {
        let line = client
            .request_line(&spec.to_request_line())
            .map_err(|e| ParseArgsError(e.to_string()))?;
        if line.contains("\"cache\":\"hit\"") {
            hits += 1;
        }
        out.push_str(&line);
        out.push('\n');
    }
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &out)
                .map_err(|e| ParseArgsError(format!("writing {path}: {e}")))?;
            eprintln!("wrote {} responses to {path}", specs.len());
        }
        None => print!("{out}"),
    }
    eprintln!("{} jobs, {hits} cache hits", specs.len());
    Ok(())
}

/// `clognet fingerprint`: print the canonical content-address of a job
/// without running it. `--canonical` also prints the canonical
/// serialization the hash is computed over. With `--peers` the job is
/// placed on the cluster's consistent-hash ring: `--owner` prints only
/// the owning node's address to stdout (for scripting), otherwise the
/// owner and replica holders go to stderr alongside the fingerprint.
///
/// # Errors
///
/// Bad options, or `--owner` without `--peers`.
pub fn cmd_fingerprint(args: &Args) -> Result<(), ParseArgsError> {
    let mut keys = job_opt_keys();
    keys.extend_from_slice(&[
        "gpu",
        "cpu",
        "warm",
        "cycles",
        "canonical",
        "peers",
        "owner",
        "replicas",
        "vnodes",
    ]);
    args.reject_unknown(&keys)?;
    let gpu = args.get_or("gpu", "HS");
    let cpu = args.get_or("cpu", "bodytrack");
    let warm = args.get_num("warm", 6_000u64)?;
    let cycles = args.get_num("cycles", 15_000u64)?;
    let cfg = config_from(args)?;
    let fp = job_fingerprint(&cfg, gpu, cpu, warm, cycles);
    let peers = args.get("peers").map(parse_peers).unwrap_or_default();
    if peers.is_empty() {
        if args.flag("owner") {
            return Err(ParseArgsError(
                "--owner needs --peers <addr,...> to build the ring".into(),
            ));
        }
        if args.flag("canonical") {
            println!("{}", canonical_job(&cfg, gpu, cpu, warm, cycles));
        }
        println!("{}", fingerprint_hex(fp));
        return Ok(());
    }
    let vnodes = args
        .get_num("vnodes", clognet_proto::DEFAULT_VNODES)?
        .max(1);
    let replicas: usize = args.get_num("replicas", 1usize)?;
    let ring = HashRing::with_nodes(peers.iter().map(String::as_str), vnodes);
    let placement = ring.placement(fp, replicas + 1);
    let owner = placement
        .first()
        .copied()
        .ok_or_else(|| ParseArgsError("empty ring: no peers to place the job on".into()))?;
    if args.flag("owner") {
        // Bare address on stdout so shell scripts can capture it.
        println!("{owner}");
        return Ok(());
    }
    if args.flag("canonical") {
        println!("{}", canonical_job(&cfg, gpu, cpu, warm, cycles));
    }
    println!("{}", fingerprint_hex(fp));
    eprintln!("owner {owner}");
    for replica in &placement[1..] {
        eprintln!("replica {replica}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_rejects_unknown_workloads_and_options() {
        let h = SimHandler;
        let bad_gpu = JobSpec::new("NOPE", "bodytrack");
        assert!(h.fingerprint(&bad_gpu).is_err());
        let bad_cpu = JobSpec::new("HS", "nope");
        assert!(h.fingerprint(&bad_cpu).is_err());
        let mut bad_opt = JobSpec::new("HS", "bodytrack");
        bad_opt.opts.insert("gpuu".into(), "HS".into());
        let err = h.fingerprint(&bad_opt).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("gpuu"));
    }

    #[test]
    fn scheme_spellings_share_a_fingerprint() {
        let h = SimHandler;
        let mut a = JobSpec::new("HS", "bodytrack");
        a.opts.insert("scheme".into(), "dr".into());
        let mut b = a.clone();
        b.opts.insert("scheme".into(), "delegated-replies".into());
        assert_eq!(h.fingerprint(&a).unwrap(), h.fingerprint(&b).unwrap());
        let mut c = a.clone();
        c.opts.insert("scheme".into(), "baseline".into());
        assert_ne!(h.fingerprint(&a).unwrap(), h.fingerprint(&c).unwrap());
    }

    #[test]
    fn fast_forward_mode_does_not_change_the_fingerprint() {
        let h = SimHandler;
        let a = JobSpec::new("HS", "bodytrack");
        let mut b = a.clone();
        b.opts.insert("no-ff".into(), "true".into());
        assert_eq!(h.fingerprint(&a).unwrap(), h.fingerprint(&b).unwrap());
    }

    #[test]
    fn shard_count_does_not_change_the_fingerprint() {
        // Sharding is an execution mode, not part of the job's
        // identity: a sharded submit must hit the cache entry a
        // sequential run populated.
        let h = SimHandler;
        let a = JobSpec::new("HS", "bodytrack");
        let mut b = a.clone();
        b.opts.insert("shards".into(), "4".into());
        assert_eq!(h.fingerprint(&a).unwrap(), h.fingerprint(&b).unwrap());
    }

    #[test]
    fn snapshot_keys_ignore_execution_mode_knobs() {
        // The snapshot tier obeys the same exclusion rule as the
        // fingerprint: a sharded or no-ff submit must hit the snapshot
        // a sequential run cached.
        let h = SimHandler;
        let a = JobSpec::new("HS", "bodytrack");
        let key = h.snapshot_key(&a).expect("warmup > 0 has a key");
        let mut sharded = a.clone();
        sharded.opts.insert("shards".into(), "4".into());
        let mut no_ff = a.clone();
        no_ff.opts.insert("no-ff".into(), "true".into());
        assert_eq!(h.snapshot_key(&sharded), Some(key));
        assert_eq!(h.snapshot_key(&no_ff), Some(key));
        // Anything that changes the warmup prefix changes the key.
        let mut other_warm = a.clone();
        other_warm.warm += 1;
        assert_ne!(h.snapshot_key(&other_warm), Some(key));
        let mut other_scheme = a.clone();
        other_scheme.opts.insert("scheme".into(), "dr".into());
        assert_ne!(h.snapshot_key(&other_scheme), Some(key));
        // But the measured window does not (that is the whole point).
        let mut other_cycles = a.clone();
        other_cycles.cycles += 500;
        assert_eq!(h.snapshot_key(&other_cycles), Some(key));
    }

    #[test]
    fn fabric_knobs_are_identity_knobs_for_both_cache_tiers() {
        // Unlike `no-ff`/`shards`, every `--chips`/`--fabric-*` option
        // changes what is simulated: a 2-chip job must never hit the
        // single-chip cache entry, and degrading a fabric link must
        // miss both the result cache and the snapshot tier.
        let h = SimHandler;
        let a = JobSpec::new("HS", "bodytrack");
        let fp = h.fingerprint(&a).unwrap();
        let key = h.snapshot_key(&a).expect("warmup > 0 has a key");
        let mut chips = a.clone();
        chips.opts.insert("chips".into(), "2".into());
        assert_ne!(h.fingerprint(&chips).unwrap(), fp);
        assert_ne!(h.snapshot_key(&chips), Some(key));
        let mut degraded = chips.clone();
        degraded
            .opts
            .insert("fabric-reply-latency".into(), "40".into());
        assert_ne!(
            h.fingerprint(&degraded).unwrap(),
            h.fingerprint(&chips).unwrap()
        );
        assert_ne!(h.snapshot_key(&degraded), h.snapshot_key(&chips));
        // Spelling the defaults out loud still lands on a distinct
        // entry from no fabric at all (a package is not a chip), but
        // execution-mode knobs on a fabric job stay excluded.
        let mut sharded = chips.clone();
        sharded.opts.insert("shards".into(), "2".into());
        assert_eq!(
            h.fingerprint(&sharded).unwrap(),
            h.fingerprint(&chips).unwrap()
        );
        assert_eq!(h.snapshot_key(&sharded), h.snapshot_key(&chips));
    }

    #[test]
    fn degenerate_fabric_jobs_are_rejected_as_bad_requests() {
        let h = SimHandler;
        let mut spec = JobSpec::new("HS", "bodytrack");
        spec.opts.insert("chips".into(), "2".into());
        spec.opts.insert("fabric-gateways".into(), "99".into());
        let err = h.fingerprint(&spec).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("memory nodes"), "{}", err.message);
        let mut zero = JobSpec::new("HS", "bodytrack");
        zero.opts.insert("chips".into(), "0".into());
        let err = h.fingerprint(&zero).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn control_knobs_are_identity_knobs_for_both_cache_tiers() {
        // A controlled job simulates something different from an
        // uncontrolled one (the controller can rewrite the scheme
        // mid-run), so `--control` and every threshold knob must land
        // on distinct result-cache and snapshot-tier entries.
        let h = SimHandler;
        let a = JobSpec::new("HS", "bodytrack");
        let fp = h.fingerprint(&a).unwrap();
        let key = h.snapshot_key(&a).expect("warmup > 0 has a key");
        let mut ctl = a.clone();
        ctl.opts.insert("control".into(), "hysteresis".into());
        assert_ne!(h.fingerprint(&ctl).unwrap(), fp);
        assert_ne!(h.snapshot_key(&ctl), Some(key));
        // The no-op policy is byte-identical in behavior but still a
        // different simulated machine (the controller runs and logs).
        let mut noop = a.clone();
        noop.opts.insert("control".into(), "noop".into());
        assert_ne!(h.fingerprint(&noop).unwrap(), fp);
        assert_ne!(h.fingerprint(&noop).unwrap(), h.fingerprint(&ctl).unwrap());
        // Every threshold is part of the identity.
        let mut tuned = ctl.clone();
        tuned.opts.insert("control-enter".into(), "400".into());
        assert_ne!(h.fingerprint(&tuned).unwrap(), h.fingerprint(&ctl).unwrap());
        assert_ne!(h.snapshot_key(&tuned), h.snapshot_key(&ctl));
        // Degenerate combinations are rejected as bad requests, not
        // silently cached under a bogus identity.
        let mut orphan = a.clone();
        orphan.opts.insert("control-dwell".into(), "3".into());
        let err = h.fingerprint(&orphan).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("--control"), "{}", err.message);
    }

    #[test]
    fn jobs_without_warmup_have_no_snapshot_key() {
        let h = SimHandler;
        let mut spec = JobSpec::new("HS", "bodytrack");
        spec.warm = 0;
        assert_eq!(h.snapshot_key(&spec), None);
        let bad = JobSpec::new("NOPE", "bodytrack");
        assert_eq!(h.snapshot_key(&bad), None, "unresolvable spec: no key");
    }

    #[test]
    fn corrupt_snapshots_fall_back_to_a_full_run() {
        let h = SimHandler;
        let mut spec = JobSpec::new("HS", "bodytrack");
        spec.warm = 300;
        spec.cycles = 600;
        let deadline = Instant::now() + Duration::from_secs(120);
        let (cold, snap) = h.run_with_snapshot(&spec, deadline).unwrap();
        let snap = snap.expect("warmup produced a snapshot");
        // Resuming from the real snapshot is byte-identical...
        let resumed = h.run_from_snapshot(&spec, &snap, deadline).unwrap();
        assert_eq!(cold, resumed);
        // ...and garbage bytes quietly fall back to the cold path.
        let fallback = h.run_from_snapshot(&spec, b"junk", deadline).unwrap();
        assert_eq!(cold, fallback);
        // A *valid* snapshot for a different job must not be resumed.
        let mut other = spec.clone();
        other.warm = 400;
        let (_, other_snap) = h.run_with_snapshot(&other, deadline).unwrap();
        let guarded = h
            .run_from_snapshot(&spec, &other_snap.unwrap(), deadline)
            .unwrap();
        assert_eq!(cold, guarded, "identity mismatch falls back to cold run");
    }

    #[test]
    fn unpartitionable_shard_counts_are_rejected_as_bad_requests() {
        let h = SimHandler;
        let mut spec = JobSpec::new("HS", "bodytrack");
        spec.opts.insert("shards".into(), "3".into());
        let err = h.fingerprint(&spec).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("mesh rows"), "{}", err.message);
    }

    #[test]
    fn spec_from_args_collects_only_job_options() {
        let args = Args::parse(
            "submit --gpu MM --cpu canneal --warm 100 --cycles 400 --scheme dr \
             --seed 9 --addr 127.0.0.1:1 --op run"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let spec = spec_from_args(&args).unwrap();
        assert_eq!(spec.gpu, "MM");
        assert_eq!(spec.cpu, "canneal");
        assert_eq!(spec.warm, 100);
        assert_eq!(spec.cycles, 400);
        assert_eq!(spec.opts.get("scheme").map(String::as_str), Some("dr"));
        assert_eq!(spec.opts.get("seed").map(String::as_str), Some("9"));
        assert!(
            !spec.opts.contains_key("addr"),
            "transport options stay out"
        );
        assert!(!spec.opts.contains_key("op"));
    }

    #[test]
    fn deadline_in_the_past_times_out_without_simulating_far() {
        let h = SimHandler;
        let mut spec = JobSpec::new("HS", "bodytrack");
        spec.warm = 100_000;
        spec.cycles = 100_000;
        let err = h.run(&spec, Instant::now()).unwrap_err();
        assert_eq!(err.code, ErrorCode::Timeout);
    }
}
