//! In-process drivers for the multi-run subcommands (`compare`, `sweep`,
//! `bench`): job construction, parallel execution on the
//! [`clognet_bench::runner`], and output assembly.
//!
//! This lives in the library (not `main.rs`) so tests can assert the
//! exact bytes an invocation produces — in particular that `--json`
//! output is identical between `--threads 1` and `--threads N`. Each
//! job builds its own [`System`] from an owned config and the runner
//! returns results in submission order, so thread count can never
//! change what gets printed.

use crate::args::ParseArgsError;
use crate::report;
use clognet_bench::runner::run_jobs;
use clognet_core::{Report, System};
use clognet_proto::{AddressMap, Scheme, SystemConfig};

/// Build, warm, measure, and report one workload under one config.
pub fn measure(cfg: SystemConfig, gpu: &str, cpu: &str, warm: u64, cycles: u64) -> Report {
    let mut sys = System::new(cfg, gpu, cpu);
    sys.run(warm);
    sys.reset_stats();
    sys.run(cycles);
    sys.report()
}

/// The three schemes `compare` pits against each other, in table order.
pub fn compare_schemes() -> [Scheme; 3] {
    [
        Scheme::Baseline,
        Scheme::rp_default(),
        Scheme::DelegatedReplies,
    ]
}

/// Run the scheme comparison across `threads` workers; rows come back
/// in scheme order regardless of which finishes first.
pub fn run_compare(
    base: &SystemConfig,
    gpu: &str,
    cpu: &str,
    warm: u64,
    cycles: u64,
    threads: usize,
) -> Vec<(Scheme, Report)> {
    let jobs: Vec<(Scheme, SystemConfig)> = compare_schemes()
        .into_iter()
        .map(|scheme| {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            (scheme, cfg)
        })
        .collect();
    run_jobs(jobs, threads, |(scheme, cfg)| {
        (scheme, measure(cfg, gpu, cpu, warm, cycles))
    })
}

/// One sweep point: the swept value and both scheme reports.
pub struct SweepPoint {
    /// The swept parameter's value at this point.
    pub value: u64,
    /// Report under [`Scheme::Baseline`].
    pub baseline: Report,
    /// Report under [`Scheme::DelegatedReplies`].
    pub dr: Report,
}

/// Parse a `--values v1,v2,...` list once, up front.
///
/// # Errors
///
/// Fails on any non-numeric entry.
pub fn parse_sweep_values(s: &str) -> Result<Vec<u64>, ParseArgsError> {
    s.split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|_| ParseArgsError(format!("bad sweep value `{v}`")))
        })
        .collect()
}

/// Apply one sweep parameter to a config.
///
/// Every supported parameter leaves node placement and address
/// interleaving untouched — that is what lets [`run_sweep`] derive the
/// [`Layout`](clognet_proto::Layout) and [`AddressMap`] once and clone
/// them into every point.
///
/// # Errors
///
/// Fails on an unknown parameter name.
pub fn apply_sweep_param(
    cfg: &mut SystemConfig,
    param: &str,
    v: u64,
) -> Result<(), ParseArgsError> {
    match param {
        "width" => cfg.noc.channel_bytes = v as u32,
        "l1kb" => cfg.gpu.l1.capacity_bytes = v * 1024,
        "llcmb" => cfg.llc.slice.capacity_bytes = v * 1024 * 1024 / cfg.n_mem as u64,
        "injbuf" => cfg.noc.mem_inj_buf_pkts = v as usize,
        other => {
            return Err(ParseArgsError(format!(
                "unknown sweep param `{other}` (width|l1kb|llcmb|injbuf)"
            )))
        }
    }
    Ok(())
}

/// Run a parameter sweep (each point under baseline and DR) across
/// `threads` workers, reusing one pre-derived layout/address map.
///
/// # Errors
///
/// Fails on an unknown parameter name.
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface 1:1
pub fn run_sweep(
    base: &SystemConfig,
    param: &str,
    values: &[u64],
    gpu: &str,
    cpu: &str,
    warm: u64,
    cycles: u64,
    threads: usize,
) -> Result<Vec<SweepPoint>, ParseArgsError> {
    // None of the sweep parameters move nodes or re-interleave
    // addresses, so derive both once instead of per (point, scheme).
    let layout = base.layout();
    let map = AddressMap::new(base.n_mem, base.seed);
    let mut jobs = Vec::with_capacity(values.len() * 2);
    for &v in values {
        for scheme in [Scheme::Baseline, Scheme::DelegatedReplies] {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            apply_sweep_param(&mut cfg, param, v)?;
            jobs.push(cfg);
        }
    }
    let reports = run_jobs(jobs, threads, |cfg| {
        let mut sys = System::new_prebuilt(cfg, gpu, cpu, layout.clone(), map);
        sys.run(warm);
        sys.reset_stats();
        sys.run(cycles);
        sys.report()
    });
    let mut it = reports.into_iter();
    Ok(values
        .iter()
        .map(|&value| SweepPoint {
            value,
            baseline: it.next().expect("one report per job"),
            dr: it.next().expect("one report per job"),
        })
        .collect())
}

/// Render one sweep point as its NDJSON line (without trailing newline).
pub fn sweep_point_json(param: &str, p: &SweepPoint) -> String {
    format!(
        "{{\"param\":\"{param}\",\"value\":{},\"baseline\":{},\"dr\":{}}}",
        p.value,
        report::report_json(Scheme::Baseline, &p.baseline),
        report::report_json(Scheme::DelegatedReplies, &p.dr)
    )
}

/// One timed leg of the throughput benchmark.
pub struct BenchLeg {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_s: f64,
    /// Aggregate simulated cycles per wall-clock second.
    pub sim_cycles_per_s: f64,
}

/// Result of `clognet bench`: the job matrix and both timed legs.
pub struct BenchResult {
    /// Number of (config, workload, scheme) jobs in the matrix.
    pub jobs: usize,
    /// Simulated cycles per job (warm + measured).
    pub cycles_per_job: u64,
    /// Single-threaded leg.
    pub single: BenchLeg,
    /// Multi-threaded leg.
    pub multi: BenchLeg,
}

impl BenchResult {
    /// Multi-threaded speedup over single-threaded (wall-clock).
    pub fn speedup(&self) -> f64 {
        if self.multi.wall_s > 0.0 {
            self.single.wall_s / self.multi.wall_s
        } else {
            0.0
        }
    }

    /// The `BENCH_*.json` document: a flat object matching the schema
    /// EXPERIMENTS.md records perf data points in.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"harness\":\"clognet bench\",\"jobs\":{},\"cycles_per_job\":{},\
             \"threads_single\":{},\"wall_s_single\":{:.6},\"sim_cycles_per_s_single\":{:.1},\
             \"threads_multi\":{},\"wall_s_multi\":{:.6},\"sim_cycles_per_s_multi\":{:.1},\
             \"speedup\":{:.3}}}",
            self.jobs,
            self.cycles_per_job,
            self.single.threads,
            self.single.wall_s,
            self.single.sim_cycles_per_s,
            self.multi.threads,
            self.multi.wall_s,
            self.multi.sim_cycles_per_s,
            self.speedup()
        )
    }
}

/// The fixed `compare`-shaped workload matrix the benchmark times:
/// every scheme over a small, diverse set of Table-II pairings.
pub fn bench_matrix() -> Vec<(SystemConfig, &'static str, &'static str)> {
    let pairs = [("HS", "bodytrack"), ("MM", "canneal"), ("BP", "ferret")];
    let mut jobs = Vec::new();
    for (gpu, cpu) in pairs {
        for scheme in compare_schemes() {
            jobs.push((SystemConfig::default().with_scheme(scheme), gpu, cpu));
        }
    }
    jobs
}

fn time_leg(
    jobs: Vec<(SystemConfig, &str, &str)>,
    threads: usize,
    warm: u64,
    cycles: u64,
) -> BenchLeg {
    let n = jobs.len() as f64;
    let start = std::time::Instant::now();
    let reports = run_jobs(jobs, threads, |(cfg, gpu, cpu)| {
        measure(cfg, gpu, cpu, warm, cycles)
    });
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(reports.len() as f64, n, "runner dropped a job");
    let sim_cycles = n * (warm + cycles) as f64;
    BenchLeg {
        threads,
        wall_s,
        sim_cycles_per_s: if wall_s > 0.0 {
            sim_cycles / wall_s
        } else {
            0.0
        },
    }
}

/// Time the fixed matrix single- and multi-threaded.
pub fn run_bench(threads: usize, warm: u64, cycles: u64) -> BenchResult {
    let matrix = bench_matrix();
    let jobs = matrix.len();
    let single = time_leg(matrix.clone(), 1, warm, cycles);
    let multi = time_leg(matrix, threads.max(2), warm, cycles);
    BenchResult {
        jobs,
        cycles_per_job: warm + cycles,
        single,
        multi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_values_parse_and_reject() {
        assert_eq!(parse_sweep_values("8, 16,24").unwrap(), vec![8, 16, 24]);
        assert!(parse_sweep_values("8,x").is_err());
    }

    #[test]
    fn sweep_param_application() {
        let mut cfg = SystemConfig::default();
        apply_sweep_param(&mut cfg, "width", 32).unwrap();
        assert_eq!(cfg.noc.channel_bytes, 32);
        apply_sweep_param(&mut cfg, "l1kb", 64).unwrap();
        assert_eq!(cfg.gpu.l1.capacity_bytes, 64 * 1024);
        assert!(apply_sweep_param(&mut cfg, "bogus", 1).is_err());
    }

    #[test]
    fn bench_json_is_flat_and_balanced() {
        let r = BenchResult {
            jobs: 9,
            cycles_per_job: 100,
            single: BenchLeg {
                threads: 1,
                wall_s: 2.0,
                sim_cycles_per_s: 450.0,
            },
            multi: BenchLeg {
                threads: 4,
                wall_s: 0.5,
                sim_cycles_per_s: 1800.0,
            },
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"speedup\":4.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
