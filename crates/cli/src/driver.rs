//! In-process drivers for the multi-run subcommands (`compare`, `sweep`,
//! `bench`): job construction, parallel execution on the
//! [`clognet_bench::runner`], and output assembly.
//!
//! This lives in the library (not `main.rs`) so tests can assert the
//! exact bytes an invocation produces — in particular that `--json`
//! output is identical between `--threads 1` and `--threads N`. Each
//! job builds its own [`System`] from an owned config and the runner
//! returns results in submission order, so thread count can never
//! change what gets printed.

use crate::args::ParseArgsError;
use crate::report;
use clognet_bench::runner::{run_jobs, run_jobs_with_state, timed};
use clognet_core::{MultiChipSystem, Report, Snapshot, System, TickEngine};
use clognet_proto::{AddressMap, ControlConfig, FabricConfig, Layout, Scheme, SystemConfig};

/// Build, warm, measure, and report one workload under one config.
/// `ff` selects event-horizon fast-forward (the default) or the
/// per-cycle reference loop (`--no-ff`); `shards` > 1 runs the spatial
/// sharding engine. Reports are identical across both knobs — that
/// equivalence is what the CI smoke steps assert.
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface 1:1
pub fn measure(
    cfg: SystemConfig,
    gpu: &str,
    cpu: &str,
    warm: u64,
    cycles: u64,
    ff: bool,
    shards: usize,
) -> Report {
    let mut sys = MultiChipSystem::new(cfg, gpu, cpu);
    sys.set_fast_forward(ff);
    if shards > 1 {
        sys.set_tick_engine(TickEngine::Sharded(shards))
            .expect("shard plan validated before job construction");
    }
    sys.run(warm);
    sys.reset_stats();
    sys.run(cycles);
    sys.report()
}

/// The three schemes `compare` pits against each other, in table order.
pub fn compare_schemes() -> [Scheme; 3] {
    [
        Scheme::Baseline,
        Scheme::rp_default(),
        Scheme::DelegatedReplies,
    ]
}

/// Run the scheme comparison across `threads` workers; rows come back
/// in scheme order regardless of which finishes first.
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface 1:1
pub fn run_compare(
    base: &SystemConfig,
    gpu: &str,
    cpu: &str,
    warm: u64,
    cycles: u64,
    threads: usize,
    ff: bool,
    shards: usize,
) -> Vec<(Scheme, Report)> {
    let jobs: Vec<(Scheme, SystemConfig)> = compare_schemes()
        .into_iter()
        .map(|scheme| {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            (scheme, cfg)
        })
        .collect();
    run_jobs(jobs, threads, |(scheme, cfg)| {
        (scheme, measure(cfg, gpu, cpu, warm, cycles, ff, shards))
    })
}

/// One sweep point: the swept value and both scheme reports.
#[derive(Debug)]
pub struct SweepPoint {
    /// The swept parameter's value at this point.
    pub value: u64,
    /// Report under [`Scheme::Baseline`].
    pub baseline: Report,
    /// Report under [`Scheme::DelegatedReplies`].
    pub dr: Report,
}

/// Parse a `--values v1,v2,...` list once, up front.
///
/// # Errors
///
/// Fails on any non-numeric entry.
pub fn parse_sweep_values(s: &str) -> Result<Vec<u64>, ParseArgsError> {
    s.split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|_| ParseArgsError(format!("bad sweep value `{v}`")))
        })
        .collect()
}

/// Apply one sweep parameter to a config.
///
/// Every supported parameter leaves node placement and address
/// interleaving untouched — that is what lets [`run_sweep`] derive the
/// [`Layout`](clognet_proto::Layout) and [`AddressMap`] once and clone
/// them into every point.
///
/// # Errors
///
/// Fails on an unknown parameter name.
pub fn apply_sweep_param(
    cfg: &mut SystemConfig,
    param: &str,
    v: u64,
) -> Result<(), ParseArgsError> {
    match param {
        "width" => cfg.noc.channel_bytes = v as u32,
        "l1kb" => cfg.gpu.l1.capacity_bytes = v * 1024,
        "llcmb" => cfg.llc.slice.capacity_bytes = v * 1024 * 1024 / cfg.n_mem as u64,
        "injbuf" => cfg.noc.mem_inj_buf_pkts = v as usize,
        "drmax" => cfg.dr.max_per_cycle = v as usize,
        other => {
            return Err(ParseArgsError(format!(
                "unknown sweep param `{other}` ({SWEEP_PARAMS})"
            )))
        }
    }
    Ok(())
}

/// The sweep parameters `--param` accepts, for error messages and help.
pub const SWEEP_PARAMS: &str = "width|l1kb|llcmb|injbuf|drmax";

/// How a multi-variant command (`sweep`, `compare`) obtains its warmed
/// starting state when `--warm-from` is given.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarmStart {
    /// Simulate the warmup once, snapshot, and fork the snapshot into
    /// every variant on the parallel runner.
    Fork,
    /// Re-simulate the warmup per variant with the same
    /// apply-after-warmup semantics as `Fork` — the cold reference leg
    /// the CI equivalence smoke compares `Fork` against.
    Each,
    /// Fork from a snapshot file written earlier by `clognet snapshot`.
    File(String),
}

/// Parse a `--warm-from` value: `fork`, `each`, or a snapshot path.
pub fn parse_warm_start(s: &str) -> WarmStart {
    match s {
        "fork" => WarmStart::Fork,
        "each" => WarmStart::Each,
        path => WarmStart::File(path.to_string()),
    }
}

/// Whether a sweep parameter can be retargeted on a warmed system
/// without rebuilding it (see [`System::apply_warm_param`]).
pub fn is_warm_param(param: &str) -> bool {
    matches!(param, "injbuf" | "drmax")
}

/// Load and identity-check a snapshot file for `--warm-from <path>`:
/// the embedded config and benchmark names must match what the command
/// would otherwise simulate, or every variant would silently measure a
/// different chip.
fn load_warm_snapshot(
    path: &str,
    base: &SystemConfig,
    gpu: &str,
    cpu: &str,
) -> Result<Snapshot, ParseArgsError> {
    let bytes = std::fs::read(path).map_err(|e| ParseArgsError(format!("reading {path}: {e}")))?;
    let snap = Snapshot::from_bytes(bytes)
        .map_err(|e| ParseArgsError(format!("{path} is not a usable snapshot: {e}")))?;
    if snap.gpu_bench() != gpu || snap.cpu_bench() != cpu {
        return Err(ParseArgsError(format!(
            "{path} was taken on {}+{}, not {gpu}+{cpu}",
            snap.gpu_bench(),
            snap.cpu_bench()
        )));
    }
    if snap.config() != base {
        return Err(ParseArgsError(format!(
            "{path} was taken under a different configuration; \
             rerun `clognet snapshot` with the same options"
        )));
    }
    Ok(snap)
}

/// Run a warm-started parameter sweep: one shared warmup (simulated
/// once and forked, re-simulated per variant, or loaded from a file per
/// `mode`), then each (scheme, value) variant applied *after* warmup,
/// stats reset, and the measured span run. `Fork` and `Each` produce
/// byte-identical points — that equivalence is what the CI warm-start
/// smoke asserts — and `Fork` pays for the warmup once instead of once
/// per variant.
///
/// # Errors
///
/// Fails on a structural (non-warm-applicable) parameter, a bad value,
/// or an unreadable/mismatched snapshot file.
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface 1:1
pub fn run_sweep_warm(
    base: &SystemConfig,
    param: &str,
    values: &[u64],
    gpu: &str,
    cpu: &str,
    warm: u64,
    cycles: u64,
    threads: usize,
    mode: &WarmStart,
) -> Result<Vec<SweepPoint>, ParseArgsError> {
    if !is_warm_param(param) {
        return Err(ParseArgsError(format!(
            "--warm-from sweeps only warm-applicable params (injbuf|drmax); \
             `{param}` is structural — rerun without --warm-from"
        )));
    }
    if param == "injbuf" && values.contains(&0) {
        return Err(ParseArgsError("injbuf must be at least 1".into()));
    }
    let jobs: Vec<(Scheme, u64)> = values
        .iter()
        .flat_map(|&v| {
            [Scheme::Baseline, Scheme::DelegatedReplies]
                .into_iter()
                .map(move |s| (s, v))
        })
        .collect();
    let measure_fork = |sys: &mut MultiChipSystem, scheme: Scheme, v: u64| {
        sys.set_scheme(scheme);
        sys.apply_warm_param(param, v)
            .expect("warm param validated up front");
        sys.reset_stats();
        sys.run(cycles);
        sys.report()
    };
    let reports = match mode {
        WarmStart::Each => run_jobs(jobs, threads, |(scheme, v)| {
            let mut sys = MultiChipSystem::new(base.clone(), gpu, cpu);
            sys.run(warm);
            measure_fork(&mut sys, scheme, v)
        }),
        WarmStart::Fork => {
            let mut sys = MultiChipSystem::new(base.clone(), gpu, cpu);
            sys.run(warm);
            let snap = sys.snapshot();
            run_jobs(jobs, threads, |(scheme, v)| {
                let mut sys =
                    MultiChipSystem::restore(&snap).expect("just-taken snapshot restores");
                measure_fork(&mut sys, scheme, v)
            })
        }
        WarmStart::File(path) => {
            let snap = load_warm_snapshot(path, base, gpu, cpu)?;
            run_jobs(jobs, threads, |(scheme, v)| {
                let mut sys = MultiChipSystem::restore(&snap).expect("snapshot validated up front");
                measure_fork(&mut sys, scheme, v)
            })
        }
    };
    let mut it = reports.into_iter();
    Ok(values
        .iter()
        .map(|&value| SweepPoint {
            value,
            baseline: it.next().expect("one report per job"),
            dr: it.next().expect("one report per job"),
        })
        .collect())
}

/// Run a warm-started scheme comparison: warm once under the base
/// config's scheme, then fork (or re-warm, per `mode`) into each
/// compared scheme via [`System::set_scheme`].
///
/// Note the semantics differ from cold `compare`: here every scheme
/// shares one warmup trajectory (under `base.scheme`) and switches
/// scheme at the fork point, so scheme-dependent warmup effects are
/// deliberately held constant across rows.
///
/// # Errors
///
/// Fails on an unreadable/mismatched snapshot file.
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface 1:1
pub fn run_compare_warm(
    base: &SystemConfig,
    gpu: &str,
    cpu: &str,
    warm: u64,
    cycles: u64,
    threads: usize,
    mode: &WarmStart,
) -> Result<Vec<(Scheme, Report)>, ParseArgsError> {
    let jobs: Vec<Scheme> = compare_schemes().to_vec();
    let measure_fork = |sys: &mut MultiChipSystem, scheme: Scheme| {
        sys.set_scheme(scheme);
        sys.reset_stats();
        sys.run(cycles);
        sys.report()
    };
    let reports = match mode {
        WarmStart::Each => run_jobs(jobs.clone(), threads, |scheme| {
            let mut sys = MultiChipSystem::new(base.clone(), gpu, cpu);
            sys.run(warm);
            measure_fork(&mut sys, scheme)
        }),
        WarmStart::Fork => {
            let mut sys = MultiChipSystem::new(base.clone(), gpu, cpu);
            sys.run(warm);
            let snap = sys.snapshot();
            run_jobs(jobs.clone(), threads, |scheme| {
                let mut sys =
                    MultiChipSystem::restore(&snap).expect("just-taken snapshot restores");
                measure_fork(&mut sys, scheme)
            })
        }
        WarmStart::File(path) => {
            let snap = load_warm_snapshot(path, base, gpu, cpu)?;
            run_jobs(jobs.clone(), threads, |scheme| {
                let mut sys = MultiChipSystem::restore(&snap).expect("snapshot validated up front");
                measure_fork(&mut sys, scheme)
            })
        }
    };
    Ok(jobs.into_iter().zip(reports).collect())
}

/// Run a parameter sweep (each point under baseline and DR) across
/// `threads` workers, reusing one pre-derived layout/address map.
///
/// # Errors
///
/// Fails on an unknown parameter name.
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface 1:1
pub fn run_sweep(
    base: &SystemConfig,
    param: &str,
    values: &[u64],
    gpu: &str,
    cpu: &str,
    warm: u64,
    cycles: u64,
    threads: usize,
    ff: bool,
    shards: usize,
) -> Result<Vec<SweepPoint>, ParseArgsError> {
    // None of the sweep parameters move nodes or re-interleave
    // addresses, so derive both once instead of per (point, scheme).
    let layout = base.layout();
    let map = AddressMap::new(base.n_mem, base.seed);
    let mut jobs = Vec::with_capacity(values.len() * 2);
    for &v in values {
        for scheme in [Scheme::Baseline, Scheme::DelegatedReplies] {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            apply_sweep_param(&mut cfg, param, v)?;
            jobs.push(cfg);
        }
    }
    let reports = run_jobs(jobs, threads, |cfg| {
        let mut sys = MultiChipSystem::new_prebuilt(cfg, gpu, cpu, layout.clone(), map);
        sys.set_fast_forward(ff);
        if shards > 1 {
            sys.set_tick_engine(TickEngine::Sharded(shards))
                .expect("shard plan validated before job construction");
        }
        sys.run(warm);
        sys.reset_stats();
        sys.run(cycles);
        sys.report()
    });
    let mut it = reports.into_iter();
    Ok(values
        .iter()
        .map(|&value| SweepPoint {
            value,
            baseline: it.next().expect("one report per job"),
            dr: it.next().expect("one report per job"),
        })
        .collect())
}

/// Render one sweep point as its NDJSON line (without trailing newline).
pub fn sweep_point_json(param: &str, p: &SweepPoint) -> String {
    format!(
        "{{\"param\":\"{param}\",\"value\":{},\"baseline\":{},\"dr\":{}}}",
        p.value,
        report::report_json(Scheme::Baseline, &p.baseline),
        report::report_json(Scheme::DelegatedReplies, &p.dr)
    )
}

/// Repetitions per timed leg. The minimum is the headline number (the
/// standard microbenchmark defense against scheduler noise); the mean
/// and standard deviation across reps are reported alongside so a
/// noisy host is visible in the data rather than silently folded away.
pub const LEG_REPS: usize = 3;

/// Min / mean / population standard deviation of a rep sample.
fn rep_stats(samples: &[f64]) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (min, mean, var.sqrt())
}

/// One timed leg of the throughput benchmark.
pub struct BenchLeg {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole batch (minimum over reps).
    pub wall_s: f64,
    /// Mean wall-clock seconds across reps.
    pub wall_s_mean: f64,
    /// Standard deviation of wall-clock seconds across reps.
    pub wall_s_stddev: f64,
    /// Aggregate simulated cycles per wall-clock second (best rep).
    pub sim_cycles_per_s: f64,
}

/// One timed leg of the fast-forward benchmark: the low-intensity
/// matrix run single-threaded with fast-forward on or off.
pub struct FfLeg {
    /// Wall-clock seconds for the measured span (minimum over reps,
    /// warmup excluded).
    pub wall_s: f64,
    /// Mean wall-clock seconds across reps.
    pub wall_s_mean: f64,
    /// Standard deviation of wall-clock seconds across reps.
    pub wall_s_stddev: f64,
    /// Total cycles the measured span skipped (0 with fast-forward off).
    pub skipped: u64,
}

/// Result of `clognet bench`: the job matrix and both timed legs, plus
/// the low-intensity fast-forward legs.
pub struct BenchResult {
    /// Number of (config, workload, scheme) jobs in the matrix.
    pub jobs: usize,
    /// Simulated cycles per job (warm + measured).
    pub cycles_per_job: u64,
    /// Single-threaded leg.
    pub single: BenchLeg,
    /// Multi-threaded leg.
    pub multi: BenchLeg,
    /// Jobs in the low-intensity fast-forward matrix.
    pub low_jobs: usize,
    /// Measured (timed) cycles per low-intensity job.
    pub low_cycles_per_job: u64,
    /// Low-intensity leg with fast-forward engaged.
    pub ff_on: FfLeg,
    /// Low-intensity leg on the per-cycle reference loop.
    pub ff_off: FfLeg,
}

impl BenchResult {
    /// Multi-threaded speedup over single-threaded (wall-clock).
    pub fn speedup(&self) -> f64 {
        if self.multi.wall_s > 0.0 {
            self.single.wall_s / self.multi.wall_s
        } else {
            0.0
        }
    }

    /// Fast-forward speedup over the per-cycle loop (wall-clock, on the
    /// low-intensity matrix).
    pub fn ff_speedup(&self) -> f64 {
        if self.ff_on.wall_s > 0.0 {
            self.ff_off.wall_s / self.ff_on.wall_s
        } else {
            0.0
        }
    }

    /// Fraction of the low-intensity measured cycles fast-forward
    /// skipped instead of ticking.
    pub fn skipped_ratio(&self) -> f64 {
        let total = self.low_jobs as u64 * self.low_cycles_per_job;
        if total > 0 {
            self.ff_on.skipped as f64 / total as f64
        } else {
            0.0
        }
    }

    /// The `BENCH_*.json` document: a flat object matching the schema
    /// EXPERIMENTS.md records perf data points in.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"harness\":\"clognet bench\",\"jobs\":{},\"cycles_per_job\":{},\"reps\":{},\
             \"threads_single\":{},\"wall_s_single\":{:.6},\
             \"wall_s_single_mean\":{:.6},\"wall_s_single_stddev\":{:.6},\
             \"sim_cycles_per_s_single\":{:.1},\
             \"threads_multi\":{},\"wall_s_multi\":{:.6},\
             \"wall_s_multi_mean\":{:.6},\"wall_s_multi_stddev\":{:.6},\
             \"sim_cycles_per_s_multi\":{:.1},\
             \"speedup\":{:.3},\
             \"low_jobs\":{},\"low_cycles_per_job\":{},\
             \"wall_s_ff_on\":{:.6},\"wall_s_ff_on_mean\":{:.6},\"wall_s_ff_on_stddev\":{:.6},\
             \"wall_s_ff_off\":{:.6},\"wall_s_ff_off_mean\":{:.6},\"wall_s_ff_off_stddev\":{:.6},\
             \"skipped_cycles\":{},\"skipped_ratio\":{:.3},\"ff_speedup\":{:.3}}}",
            self.jobs,
            self.cycles_per_job,
            LEG_REPS,
            self.single.threads,
            self.single.wall_s,
            self.single.wall_s_mean,
            self.single.wall_s_stddev,
            self.single.sim_cycles_per_s,
            self.multi.threads,
            self.multi.wall_s,
            self.multi.wall_s_mean,
            self.multi.wall_s_stddev,
            self.multi.sim_cycles_per_s,
            self.speedup(),
            self.low_jobs,
            self.low_cycles_per_job,
            self.ff_on.wall_s,
            self.ff_on.wall_s_mean,
            self.ff_on.wall_s_stddev,
            self.ff_off.wall_s,
            self.ff_off.wall_s_mean,
            self.ff_off.wall_s_stddev,
            self.ff_on.skipped,
            self.skipped_ratio(),
            self.ff_speedup()
        )
    }
}

/// The fixed `compare`-shaped workload matrix the benchmark times:
/// every scheme over a small, diverse set of Table-II pairings.
pub fn bench_matrix() -> Vec<(SystemConfig, &'static str, &'static str)> {
    let pairs = [("HS", "bodytrack"), ("MM", "canneal"), ("BP", "ferret")];
    let mut jobs = Vec::new();
    for (gpu, cpu) in pairs {
        for scheme in compare_schemes() {
            jobs.push((SystemConfig::default().with_scheme(scheme), gpu, cpu));
        }
    }
    jobs
}

/// Dead-cycle-dominated matrix for the fast-forward legs: a 2x2 mesh
/// with one single-warp GPU core whose working set is fully L1-resident
/// (large L1, periodic flush off) and an L1-resident CPU workload
/// leaves the NoC drained most cycles, so the quiescence engine is the
/// dominant factor in wall-clock time.
pub fn low_intensity_matrix() -> Vec<(SystemConfig, &'static str, &'static str)> {
    let pairs = [("NN", "blackscholes"), ("NN", "swaptions")];
    let mut jobs = Vec::new();
    for (gpu, cpu) in pairs {
        for scheme in compare_schemes() {
            let mut cfg = SystemConfig::default().with_scheme(scheme);
            cfg.mesh_width = 2;
            cfg.mesh_height = 2;
            cfg.n_gpu = 1;
            cfg.n_cpu = 1;
            cfg.n_mem = 2;
            cfg.gpu.warps_per_core = 1;
            cfg.gpu.issue_width = 1;
            cfg.gpu.l1.capacity_bytes = 1024 * 1024;
            cfg.gpu.flush_interval = None;
            jobs.push((cfg, gpu, cpu));
        }
    }
    jobs
}

/// Time the low-intensity matrix with fast-forward on or off. Systems
/// are built and warmed *outside* the timer — the cold-miss-dominated
/// warmup is identical in both modes (both warm fast-forwarded), so
/// the timed span compares steady-state throughput only. The leg runs
/// [`LEG_REPS`] times on freshly built systems (the simulation is
/// deterministic, so every rep does identical work) and reports the
/// minimum wall time alongside the mean and standard deviation.
fn time_ff_leg(
    jobs: &[(SystemConfig, &'static str, &'static str)],
    ff: bool,
    warm: u64,
    cycles: u64,
) -> FfLeg {
    let mut samples = Vec::with_capacity(LEG_REPS);
    let mut skipped = 0;
    for _ in 0..LEG_REPS {
        let mut systems: Vec<System> = jobs
            .iter()
            .map(|(cfg, gpu, cpu)| {
                let mut sys = System::new(cfg.clone(), gpu, cpu);
                sys.run(warm);
                sys.reset_stats();
                sys.set_fast_forward(ff);
                sys
            })
            .collect();
        let start = std::time::Instant::now();
        for sys in &mut systems {
            sys.run(cycles);
        }
        samples.push(start.elapsed().as_secs_f64());
        skipped = systems.iter().map(System::skipped_cycles).sum();
    }
    let (wall_s, wall_s_mean, wall_s_stddev) = rep_stats(&samples);
    FfLeg {
        wall_s,
        wall_s_mean,
        wall_s_stddev,
        skipped,
    }
}

fn time_leg(
    jobs: Vec<(SystemConfig, &str, &str)>,
    threads: usize,
    warm: u64,
    cycles: u64,
) -> BenchLeg {
    let n = jobs.len() as f64;
    let mut samples = Vec::with_capacity(LEG_REPS);
    for _ in 0..LEG_REPS {
        let rep_jobs = jobs.clone();
        let start = std::time::Instant::now();
        // Every job in the matrix shares the default chip shape, so
        // each worker derives the node layout and address map once and
        // reuses them for every job it claims instead of re-deriving
        // per job (the PR 2 alloc-free idiom, per worker).
        let reports = run_jobs_with_state(
            rep_jobs,
            threads,
            || None::<(Layout, AddressMap)>,
            |prebuilt, (cfg, gpu, cpu)| {
                let (layout, map) = prebuilt
                    .get_or_insert_with(|| (cfg.layout(), AddressMap::new(cfg.n_mem, cfg.seed)));
                let mut sys = System::new_prebuilt(cfg, gpu, cpu, layout.clone(), *map);
                sys.run(warm);
                sys.reset_stats();
                sys.run(cycles);
                sys.report()
            },
        );
        samples.push(start.elapsed().as_secs_f64());
        assert_eq!(reports.len() as f64, n, "runner dropped a job");
    }
    let (wall_s, wall_s_mean, wall_s_stddev) = rep_stats(&samples);
    let sim_cycles = n * (warm + cycles) as f64;
    BenchLeg {
        threads,
        wall_s,
        wall_s_mean,
        wall_s_stddev,
        sim_cycles_per_s: if wall_s > 0.0 {
            sim_cycles / wall_s
        } else {
            0.0
        },
    }
}

/// Warmup for the fast-forward legs: small chips tick fast but need a
/// long warmup before their L1-resident workloads stop missing cold —
/// only then do dead cycles dominate.
const LOW_WARM: u64 = 20_000;

/// Time the fixed matrix single- and multi-threaded, then the
/// low-intensity matrix with fast-forward on vs off.
pub fn run_bench(threads: usize, warm: u64, cycles: u64) -> BenchResult {
    let matrix = bench_matrix();
    let jobs = matrix.len();
    let single = time_leg(matrix.clone(), 1, warm, cycles);
    let multi = time_leg(matrix, threads.max(2), warm, cycles);
    let low = low_intensity_matrix();
    let low_cycles = 12 * cycles;
    let ff_off = time_ff_leg(&low, false, LOW_WARM, low_cycles);
    let ff_on = time_ff_leg(&low, true, LOW_WARM, low_cycles);
    BenchResult {
        jobs,
        cycles_per_job: warm + cycles,
        single,
        multi,
        low_jobs: low.len(),
        low_cycles_per_job: low_cycles,
        ff_on,
        ff_off,
    }
}

/// One timed leg of the intra-run shard-scaling benchmark.
pub struct ShardLeg {
    /// Shard count for this leg (1 = sequential engine).
    pub shards: usize,
    /// Wall-clock seconds for the measured span (minimum over reps).
    pub wall_s: f64,
    /// Mean wall-clock seconds across reps.
    pub wall_s_mean: f64,
    /// Standard deviation of wall-clock seconds across reps.
    pub wall_s_stddev: f64,
    /// Simulated cycles per wall-clock second (best rep).
    pub sim_cycles_per_s: f64,
}

/// Result of `clognet bench --shards <max>`: a strong-scaling curve
/// for one simulation spatially sharded across cores, on a mesh big
/// enough (16x16) that per-cycle router work dwarfs barrier overhead.
pub struct ShardBenchResult {
    /// Mesh dimensions of the benchmarked chip.
    pub mesh: (usize, usize),
    /// Warmup cycles per leg (excluded from the timed span).
    pub warm: u64,
    /// Measured cycles per leg.
    pub cycles: u64,
    /// One leg per shard count, ascending, starting at 1.
    pub legs: Vec<ShardLeg>,
    /// Whether every sharded leg reproduced the sequential leg's
    /// report byte-for-byte (the determinism contract, re-checked on
    /// the benchmark's own runs).
    pub identical_reports: bool,
}

impl ShardBenchResult {
    /// Wall-clock speedup of the `shards`-way leg over the sequential
    /// leg, or 0 when that leg was not run.
    pub fn speedup_at(&self, shards: usize) -> f64 {
        let seq = self.legs.iter().find(|l| l.shards == 1);
        let leg = self.legs.iter().find(|l| l.shards == shards);
        match (seq, leg) {
            (Some(s), Some(l)) if l.wall_s > 0.0 => s.wall_s / l.wall_s,
            _ => 0.0,
        }
    }

    /// Whether any benchmarked leg ran more shards than the host has
    /// hardware threads. Shard workers are busy-wait barrier peers, so
    /// oversubscribing them serializes (and then some) — speedups from
    /// such a run describe scheduler behavior, not the engine. See
    /// DESIGN.md §9.5.
    pub fn shards_gt_host_threads(&self) -> bool {
        let host = std::thread::available_parallelism().map_or(1, usize::from);
        self.legs.iter().map(|l| l.shards).max().unwrap_or(1) > host
    }

    /// The `BENCH_shards.json` document: scaling legs plus the
    /// headline 4-shard speedup. Single-core CI hosts record the curve
    /// without enforcing a ratio, so the host's parallelism is included
    /// for interpretation, and `shards_gt_host_threads` flags a curve
    /// whose wall-clock numbers are not meaningful speedups.
    pub fn to_json(&self) -> String {
        let legs: Vec<String> = self
            .legs
            .iter()
            .map(|l| {
                format!(
                    "{{\"shards\":{},\"wall_s\":{:.6},\"wall_s_mean\":{:.6},\
                     \"wall_s_stddev\":{:.6},\"sim_cycles_per_s\":{:.1},\"speedup\":{:.3}}}",
                    l.shards,
                    l.wall_s,
                    l.wall_s_mean,
                    l.wall_s_stddev,
                    l.sim_cycles_per_s,
                    self.speedup_at(l.shards)
                )
            })
            .collect();
        format!(
            "{{\"harness\":\"clognet bench --shards\",\"mesh\":\"{}x{}\",\
             \"warm\":{},\"cycles\":{},\"reps\":{},\"host_threads\":{},\
             \"shards_gt_host_threads\":{},\
             \"legs\":[{}],\"speedup_at_4\":{:.3},\"identical_reports\":{}}}",
            self.mesh.0,
            self.mesh.1,
            self.warm,
            self.cycles,
            LEG_REPS,
            std::thread::available_parallelism().map_or(1, usize::from),
            self.shards_gt_host_threads(),
            legs.join(","),
            self.speedup_at(4),
            self.identical_reports
        )
    }
}

/// The chip the shard-scaling benchmark runs: a 16x16 mesh (4x the
/// default router count) under Delegated Replies, following the
/// `--mesh` convention for node counts (one memory node per row, CPUs
/// at twice that, GPU cores on the remaining tiles).
pub fn shard_bench_config() -> SystemConfig {
    let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    cfg.mesh_width = 16;
    cfg.mesh_height = 16;
    cfg.n_mem = 16;
    cfg.n_cpu = 32;
    cfg.n_gpu = 16 * 16 - 3 * 16;
    cfg
}

/// Time one simulation at shard counts 1, 2, 4, ... up to
/// `max_shards` (skipping counts that do not divide the mesh rows).
/// Build and warmup happen outside the timer; each leg runs
/// [`LEG_REPS`] times on freshly built systems and reports the minimum
/// wall time. Every leg's report is checked against the sequential
/// leg's — a sharded run that got faster by diverging would be a bug,
/// not a speedup.
pub fn run_shard_bench(max_shards: usize, warm: u64, cycles: u64) -> ShardBenchResult {
    let cfg = shard_bench_config();
    let (gpu, cpu) = ("HS", "bodytrack");
    let mut counts = vec![1];
    let mut s = 2;
    while s <= max_shards {
        if cfg.mesh_height.is_multiple_of(s) {
            counts.push(s);
        }
        s *= 2;
    }
    let mut legs = Vec::with_capacity(counts.len());
    let mut reference: Option<Report> = None;
    let mut identical_reports = true;
    for shards in counts {
        let mut samples = Vec::with_capacity(LEG_REPS);
        let mut last_report = None;
        for _ in 0..LEG_REPS {
            let mut sys = System::new(cfg.clone(), gpu, cpu);
            if shards > 1 {
                sys.set_tick_engine(TickEngine::Sharded(shards))
                    .expect("power-of-two shard counts divide the 16 mesh rows");
            }
            sys.run(warm);
            sys.reset_stats();
            let start = std::time::Instant::now();
            sys.run(cycles);
            samples.push(start.elapsed().as_secs_f64());
            last_report = Some(sys.report());
        }
        match (&reference, last_report) {
            (None, report) => reference = report,
            (Some(reference), Some(report)) => {
                identical_reports &= *reference == report;
            }
            _ => {}
        }
        let (wall_s, wall_s_mean, wall_s_stddev) = rep_stats(&samples);
        legs.push(ShardLeg {
            shards,
            wall_s,
            wall_s_mean,
            wall_s_stddev,
            sim_cycles_per_s: if wall_s > 0.0 {
                cycles as f64 / wall_s
            } else {
                0.0
            },
        });
    }
    ShardBenchResult {
        mesh: (cfg.mesh_width, cfg.mesh_height),
        warm,
        cycles,
        legs,
        identical_reports,
    }
}

/// The injbuf values the warm-start benchmark sweeps: 8 variants, each
/// measured under both schemes (16 forked systems per leg).
pub const WARMSTART_VALUES: [u64; 8] = [2, 3, 4, 6, 8, 12, 16, 24];

/// Result of `clognet bench --warm-start`: the same warm-started
/// injbuf sweep timed cold (`--warm-from each`: warmup re-simulated
/// per variant) and forked (`--warm-from fork`: warmup simulated once,
/// snapshot forked per variant), on the same thread count.
pub struct WarmStartBenchResult {
    /// Swept values (each under baseline + DR).
    pub values: Vec<u64>,
    /// Warmup cycles (shared prefix the fork amortizes).
    pub warm: u64,
    /// Measured cycles per variant.
    pub cycles: u64,
    /// Worker threads for both legs.
    pub threads: usize,
    /// Wall-clock seconds for the cold (`each`) leg.
    pub cold_wall_s: f64,
    /// Wall-clock seconds for the forked leg (warmup included).
    pub forked_wall_s: f64,
    /// Whether every forked sweep point matched its cold twin
    /// byte-for-byte — the run self-certifies the snapshot contract.
    pub identical_reports: bool,
}

impl WarmStartBenchResult {
    /// Wall-clock speedup of the forked leg over the cold leg.
    pub fn speedup(&self) -> f64 {
        if self.forked_wall_s > 0.0 {
            self.cold_wall_s / self.forked_wall_s
        } else {
            0.0
        }
    }

    /// Fraction of each cold variant's simulated cycles spent in the
    /// shared warmup — the budget forking can reclaim.
    pub fn warm_fraction(&self) -> f64 {
        let total = self.warm + self.cycles;
        if total > 0 {
            self.warm as f64 / total as f64
        } else {
            0.0
        }
    }

    /// The `BENCH_warmstart.json` document.
    pub fn to_json(&self) -> String {
        let values: Vec<String> = self.values.iter().map(u64::to_string).collect();
        format!(
            "{{\"harness\":\"clognet bench --warm-start\",\"param\":\"injbuf\",\
             \"values\":[{}],\"schemes\":2,\"jobs\":{},\
             \"warm\":{},\"cycles\":{},\"warm_fraction\":{:.3},\"threads\":{},\
             \"wall_s_cold\":{:.6},\"wall_s_forked\":{:.6},\
             \"speedup\":{:.3},\"identical_reports\":{}}}",
            values.join(","),
            self.values.len() * 2,
            self.warm,
            self.cycles,
            self.warm_fraction(),
            self.threads,
            self.cold_wall_s,
            self.forked_wall_s,
            self.speedup(),
            self.identical_reports
        )
    }
}

/// Time the warm-started injbuf sweep cold vs forked and check the
/// per-variant outputs match byte-for-byte. Cold runs first so the
/// forked leg cannot ride its cache warmth.
pub fn run_warmstart_bench(threads: usize, warm: u64, cycles: u64) -> WarmStartBenchResult {
    let base = SystemConfig::default();
    let values = WARMSTART_VALUES.to_vec();
    let (gpu, cpu) = ("HS", "bodytrack");
    let (cold, cold_wall_s) = timed(|| {
        run_sweep_warm(
            &base,
            "injbuf",
            &values,
            gpu,
            cpu,
            warm,
            cycles,
            threads,
            &WarmStart::Each,
        )
        .expect("injbuf is warm-applicable")
    });
    let (forked, forked_wall_s) = timed(|| {
        run_sweep_warm(
            &base,
            "injbuf",
            &values,
            gpu,
            cpu,
            warm,
            cycles,
            threads,
            &WarmStart::Fork,
        )
        .expect("injbuf is warm-applicable")
    });
    let render = |points: &[SweepPoint]| {
        points
            .iter()
            .map(|p| sweep_point_json("injbuf", p))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let identical_reports = render(&cold) == render(&forked);
    WarmStartBenchResult {
        values,
        warm,
        cycles,
        threads,
        cold_wall_s,
        forked_wall_s,
        identical_reports,
    }
}

/// The fabric reply-path degradation points `bench --fabric` sweeps:
/// per-hop reply latency multiplier x reply link width in flits/cycle,
/// from the healthy interconnect to a clogged one (10x slower, 1/4 the
/// width) — the inter-chip analogue of the paper's reply-net clog.
pub const FABRIC_POINTS: [(u32, u32); 4] = [(1, 4), (2, 4), (4, 2), (10, 1)];

/// One degradation point of the fabric benchmark: all three schemes on
/// the same degraded package.
pub struct FabricPoint {
    /// Reply per-hop latency as a multiple of the request path's.
    pub lat_mult: u32,
    /// Reply link width in flits/cycle.
    pub reply_width: u32,
    /// Report under [`Scheme::Baseline`].
    pub baseline: Report,
    /// Report under the default Realistic Probing fanout.
    pub rp: Report,
    /// Report under [`Scheme::DelegatedReplies`].
    pub dr: Report,
}

/// Result of `clognet bench --fabric`: the scheme matrix across the
/// reply-link degradation points on a 2-chip package, plus the
/// engine-equivalence self-check (the `BENCH_fabric.json` artifact).
pub struct FabricBenchResult {
    /// Chips in the benchmarked package.
    pub chips: usize,
    /// Warmup cycles per cell (excluded from the measured span).
    pub warm: u64,
    /// Measured cycles per cell.
    pub cycles: u64,
    /// One entry per degradation point, in [`FABRIC_POINTS`] order.
    pub points: Vec<FabricPoint>,
    /// Whether every DR cell reproduced byte-for-byte on the per-cycle
    /// reference loop (`--no-ff`) and on the sharded engine — the
    /// determinism contract, re-checked on the benchmark's own runs.
    pub identical_reports: bool,
}

impl FabricBenchResult {
    /// The `BENCH_fabric.json` document.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"lat_mult\":{},\"reply_width\":{},\"baseline\":{},\"rp\":{},\"dr\":{},\
                     \"dr_over_baseline\":{:.3}}}",
                    p.lat_mult,
                    p.reply_width,
                    report::report_json(Scheme::Baseline, &p.baseline),
                    report::report_json(Scheme::rp_default(), &p.rp),
                    report::report_json(Scheme::DelegatedReplies, &p.dr),
                    if p.baseline.gpu_ipc > 0.0 {
                        p.dr.gpu_ipc / p.baseline.gpu_ipc
                    } else {
                        0.0
                    }
                )
            })
            .collect();
        format!(
            "{{\"harness\":\"clognet bench --fabric\",\"chips\":{},\
             \"warm\":{},\"cycles\":{},\
             \"points\":[{}],\"identical_reports\":{}}}",
            self.chips,
            self.warm,
            self.cycles,
            points.join(","),
            self.identical_reports
        )
    }
}

/// The package the fabric benchmark degrades: two default-mesh chips
/// on a pair fabric whose reply links run at `lat_mult` x the request
/// hop latency and `reply_width` flits/cycle.
pub fn fabric_bench_config(lat_mult: u32, reply_width: u32) -> SystemConfig {
    let d = FabricConfig::default();
    SystemConfig {
        fabric: Some(FabricConfig {
            reply_hop_latency: d.reply_hop_latency * lat_mult,
            reply_link_flits: reply_width,
            ..d
        }),
        ..SystemConfig::default()
    }
}

/// Run the scheme matrix across [`FABRIC_POINTS`] and self-check the
/// DR cells (the scheme whose engine path exercises delegation plus the
/// fabric) against the reference loop and the sharded engine.
pub fn run_fabric_bench(warm: u64, cycles: u64) -> FabricBenchResult {
    let (gpu, cpu) = ("HS", "bodytrack");
    let mut points = Vec::with_capacity(FABRIC_POINTS.len());
    let mut identical_reports = true;
    for (lat_mult, reply_width) in FABRIC_POINTS {
        let base = fabric_bench_config(lat_mult, reply_width);
        let run = |scheme: Scheme, ff: bool, shards: usize| {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            measure(cfg, gpu, cpu, warm, cycles, ff, shards)
        };
        let baseline = run(Scheme::Baseline, true, 1);
        let rp = run(Scheme::rp_default(), true, 1);
        let dr = run(Scheme::DelegatedReplies, true, 1);
        identical_reports &= run(Scheme::DelegatedReplies, false, 1) == dr;
        identical_reports &= run(Scheme::DelegatedReplies, true, 2) == dr;
        points.push(FabricPoint {
            lat_mult,
            reply_width,
            baseline,
            rp,
            dr,
        });
    }
    FabricBenchResult {
        chips: fabric_bench_config(1, 4).chips(),
        warm,
        cycles,
        points,
        identical_reports,
    }
}

/// Like [`measure`], but also report how many times the adaptive
/// controller actuated a scheme switch (0 for static configs).
pub fn control_measure(
    cfg: SystemConfig,
    gpu: &str,
    cpu: &str,
    warm: u64,
    cycles: u64,
) -> (Report, usize) {
    let mut sys = MultiChipSystem::new(cfg, gpu, cpu);
    sys.run(warm);
    sys.reset_stats();
    sys.run(cycles);
    let actuations = sys.control_actuations();
    (sys.report(), actuations)
}

/// The workload-intensity matrix `bench --adaptive` sweeps: workload
/// pairings from clog-heavy to nearly idle, each at a tight and a
/// roomy memory-node injection buffer. The adaptive controller should
/// track the best static scheme at both ends.
pub const CONTROL_POINTS: [(&str, &str, usize); 4] = [
    ("HS", "bodytrack", 4),
    ("HS", "bodytrack", 16),
    ("MM", "canneal", 4),
    ("NN", "swaptions", 16),
];

/// One point of the adaptive-control benchmark: the three static
/// schemes and the hysteresis controller on the same workload.
pub struct ControlPoint {
    /// GPU benchmark.
    pub gpu: &'static str,
    /// CPU benchmark.
    pub cpu: &'static str,
    /// Memory-node injection buffer depth (packets).
    pub injbuf: usize,
    /// Report under static [`Scheme::Baseline`].
    pub baseline: Report,
    /// Report under the static default Realistic Probing fanout.
    pub rp: Report,
    /// Report under static [`Scheme::DelegatedReplies`].
    pub dr: Report,
    /// Report under the hysteresis controller (base scheme Baseline).
    pub adaptive: Report,
    /// Scheme switches the controller actuated across warm + measured.
    pub actuations: usize,
}

impl ControlPoint {
    /// GPU IPC of the best static scheme at this point.
    pub fn best_static_ipc(&self) -> f64 {
        self.baseline
            .gpu_ipc
            .max(self.rp.gpu_ipc)
            .max(self.dr.gpu_ipc)
    }

    /// GPU IPC of the worst static scheme at this point.
    pub fn worst_static_ipc(&self) -> f64 {
        self.baseline
            .gpu_ipc
            .min(self.rp.gpu_ipc)
            .min(self.dr.gpu_ipc)
    }
}

/// Result of `clognet bench --adaptive`: the adaptive-vs-static matrix
/// plus the no-op-policy byte-identity self-check (the
/// `BENCH_control.json` artifact).
pub struct ControlBenchResult {
    /// Warmup cycles per cell (controller active, stats excluded).
    pub warm: u64,
    /// Measured cycles per cell.
    pub cycles: u64,
    /// One entry per matrix point, in [`CONTROL_POINTS`] order.
    pub points: Vec<ControlPoint>,
    /// Whether every no-op-policy cell reproduced its uncontrolled
    /// twin byte-for-byte — the controller's observe-only contract,
    /// re-checked on the benchmark's own runs.
    pub identical_reports: bool,
}

impl ControlBenchResult {
    /// Whether the adaptive controller landed within 5% of the best
    /// static scheme's GPU IPC on *every* matrix point.
    pub fn within_5pct_everywhere(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.adaptive.gpu_ipc >= 0.95 * p.best_static_ipc())
    }

    /// Whether the adaptive controller beat the worst static scheme on
    /// at least one matrix point — the payoff for not having to pick.
    pub fn beats_worst_somewhere(&self) -> bool {
        self.points
            .iter()
            .any(|p| p.adaptive.gpu_ipc > p.worst_static_ipc())
    }

    /// Controller actuations summed across the matrix.
    pub fn total_actuations(&self) -> usize {
        self.points.iter().map(|p| p.actuations).sum()
    }

    /// The `BENCH_control.json` document.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"gpu\":\"{}\",\"cpu\":\"{}\",\"injbuf\":{},\
                     \"baseline_ipc\":{:.4},\"rp_ipc\":{:.4},\"dr_ipc\":{:.4},\
                     \"adaptive_ipc\":{:.4},\"actuations\":{},\
                     \"adaptive_over_best\":{:.3},\"adaptive_over_worst\":{:.3}}}",
                    p.gpu,
                    p.cpu,
                    p.injbuf,
                    p.baseline.gpu_ipc,
                    p.rp.gpu_ipc,
                    p.dr.gpu_ipc,
                    p.adaptive.gpu_ipc,
                    p.actuations,
                    if p.best_static_ipc() > 0.0 {
                        p.adaptive.gpu_ipc / p.best_static_ipc()
                    } else {
                        0.0
                    },
                    if p.worst_static_ipc() > 0.0 {
                        p.adaptive.gpu_ipc / p.worst_static_ipc()
                    } else {
                        0.0
                    }
                )
            })
            .collect();
        format!(
            "{{\"harness\":\"clognet bench --adaptive\",\"warm\":{},\"cycles\":{},\
             \"points\":[{}],\"total_actuations\":{},\
             \"within_5pct_of_best_everywhere\":{},\"beats_worst_somewhere\":{},\
             \"identical_reports\":{}}}",
            self.warm,
            self.cycles,
            points.join(","),
            self.total_actuations(),
            self.within_5pct_everywhere(),
            self.beats_worst_somewhere(),
            self.identical_reports
        )
    }
}

/// Run the adaptive-vs-static matrix. Each point measures the three
/// static schemes, the hysteresis controller rooted at Baseline, and a
/// no-op-policy leg whose report must match the uncontrolled Baseline
/// cell byte-for-byte.
pub fn run_control_bench(warm: u64, cycles: u64) -> ControlBenchResult {
    let mut points = Vec::with_capacity(CONTROL_POINTS.len());
    let mut identical_reports = true;
    for (gpu, cpu, injbuf) in CONTROL_POINTS {
        let mut base = SystemConfig::default();
        base.noc.mem_inj_buf_pkts = injbuf;
        let run_static = |scheme: Scheme| {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            measure(cfg, gpu, cpu, warm, cycles, true, 1)
        };
        let baseline = run_static(Scheme::Baseline);
        let rp = run_static(Scheme::rp_default());
        let dr = run_static(Scheme::DelegatedReplies);
        let mut adaptive_cfg = base.clone();
        adaptive_cfg.scheme = Scheme::Baseline;
        adaptive_cfg.control = Some(ControlConfig::default());
        let (adaptive, actuations) = control_measure(adaptive_cfg, gpu, cpu, warm, cycles);
        let mut noop_cfg = base.clone();
        noop_cfg.scheme = Scheme::Baseline;
        noop_cfg.control = Some(ControlConfig::noop());
        identical_reports &= measure(noop_cfg, gpu, cpu, warm, cycles, true, 1) == baseline;
        points.push(ControlPoint {
            gpu,
            cpu,
            injbuf,
            baseline,
            rp,
            dr,
            adaptive,
            actuations,
        });
    }
    ControlBenchResult {
        warm,
        cycles,
        points,
        identical_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_values_parse_and_reject() {
        assert_eq!(parse_sweep_values("8, 16,24").unwrap(), vec![8, 16, 24]);
        assert!(parse_sweep_values("8,x").is_err());
    }

    #[test]
    fn sweep_param_application() {
        let mut cfg = SystemConfig::default();
        apply_sweep_param(&mut cfg, "width", 32).unwrap();
        assert_eq!(cfg.noc.channel_bytes, 32);
        apply_sweep_param(&mut cfg, "l1kb", 64).unwrap();
        assert_eq!(cfg.gpu.l1.capacity_bytes, 64 * 1024);
        apply_sweep_param(&mut cfg, "drmax", 5).unwrap();
        assert_eq!(cfg.dr.max_per_cycle, 5);
        assert!(apply_sweep_param(&mut cfg, "bogus", 1).is_err());
    }

    #[test]
    fn warm_start_modes_parse() {
        assert_eq!(parse_warm_start("fork"), WarmStart::Fork);
        assert_eq!(parse_warm_start("each"), WarmStart::Each);
        assert_eq!(
            parse_warm_start("snap.bin"),
            WarmStart::File("snap.bin".into())
        );
        assert!(is_warm_param("injbuf") && is_warm_param("drmax"));
        assert!(!is_warm_param("width") && !is_warm_param("l1kb"));
    }

    #[test]
    fn warm_sweep_rejects_structural_params_and_zero_injbuf() {
        let cfg = SystemConfig::default();
        let err = run_sweep_warm(
            &cfg,
            "width",
            &[8, 16],
            "HS",
            "bodytrack",
            100,
            100,
            1,
            &WarmStart::Fork,
        )
        .unwrap_err();
        assert!(err.0.contains("structural"), "{err}");
        assert!(run_sweep_warm(
            &cfg,
            "injbuf",
            &[4, 0],
            "HS",
            "bodytrack",
            100,
            100,
            1,
            &WarmStart::Fork,
        )
        .is_err());
    }

    #[test]
    fn warm_sweep_rejects_missing_or_foreign_snapshot_files() {
        let cfg = SystemConfig::default();
        let run = |path: &str| {
            run_sweep_warm(
                &cfg,
                "injbuf",
                &[4],
                "HS",
                "bodytrack",
                100,
                100,
                1,
                &WarmStart::File(path.to_string()),
            )
        };
        assert!(run("/nonexistent/snap.bin").is_err());
        let dir = std::env::temp_dir().join("clognet-warm-from-test");
        std::fs::create_dir_all(&dir).unwrap();
        let junk = dir.join("junk.bin");
        std::fs::write(&junk, b"definitely not a snapshot").unwrap();
        let err = run(junk.to_str().unwrap()).unwrap_err();
        assert!(err.0.contains("not a usable snapshot"), "{err}");
        // A real snapshot of the wrong workload is caught by identity.
        let mut sys = System::new(cfg.clone(), "MM", "canneal");
        sys.run(50);
        let other = dir.join("other.bin");
        std::fs::write(&other, sys.snapshot().as_bytes()).unwrap();
        let err = run(other.to_str().unwrap()).unwrap_err();
        assert!(err.0.contains("MM+canneal"), "{err}");
    }

    #[test]
    fn warmstart_json_is_flat_and_balanced() {
        let r = WarmStartBenchResult {
            values: vec![2, 4, 8],
            warm: 2000,
            cycles: 1000,
            threads: 4,
            cold_wall_s: 3.0,
            forked_wall_s: 1.5,
            identical_reports: true,
        };
        let j = r.to_json();
        assert!(j.contains("\"harness\":\"clognet bench --warm-start\""));
        assert!(j.contains("\"values\":[2,4,8]"));
        assert!(j.contains("\"jobs\":6"));
        assert!(j.contains("\"warm_fraction\":0.667"));
        assert!(j.contains("\"speedup\":2.000"));
        assert!(j.contains("\"identical_reports\":true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn bench_json_is_flat_and_balanced() {
        let r = BenchResult {
            jobs: 9,
            cycles_per_job: 100,
            single: BenchLeg {
                threads: 1,
                wall_s: 2.0,
                wall_s_mean: 2.125,
                wall_s_stddev: 0.25,
                sim_cycles_per_s: 450.0,
            },
            multi: BenchLeg {
                threads: 4,
                wall_s: 0.5,
                wall_s_mean: 0.5,
                wall_s_stddev: 0.0,
                sim_cycles_per_s: 1800.0,
            },
            low_jobs: 6,
            low_cycles_per_job: 1000,
            ff_on: FfLeg {
                wall_s: 0.25,
                wall_s_mean: 0.3,
                wall_s_stddev: 0.05,
                skipped: 3000,
            },
            ff_off: FfLeg {
                wall_s: 1.0,
                wall_s_mean: 1.0,
                wall_s_stddev: 0.0,
                skipped: 0,
            },
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"speedup\":4.000"));
        assert!(j.contains("\"ff_speedup\":4.000"));
        assert!(j.contains("\"skipped_ratio\":0.500"));
        assert!(j.contains("\"skipped_cycles\":3000"));
        // Per-leg rep statistics (min is the headline wall_s).
        assert!(j.contains("\"reps\":3"));
        assert!(j.contains("\"wall_s_single\":2.000000"));
        assert!(j.contains("\"wall_s_single_mean\":2.125000"));
        assert!(j.contains("\"wall_s_single_stddev\":0.250000"));
        assert!(j.contains("\"wall_s_multi_mean\":0.500000"));
        assert!(j.contains("\"wall_s_multi_stddev\":0.000000"));
        assert!(j.contains("\"wall_s_ff_on_mean\":0.300000"));
        assert!(j.contains("\"wall_s_ff_on_stddev\":0.050000"));
        assert!(j.contains("\"wall_s_ff_off_mean\":1.000000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn rep_stats_min_mean_stddev() {
        let (min, mean, stddev) = rep_stats(&[2.0, 4.0, 6.0]);
        assert_eq!(min, 2.0);
        assert_eq!(mean, 4.0);
        assert!((stddev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let (min, mean, stddev) = rep_stats(&[1.5]);
        assert_eq!((min, mean, stddev), (1.5, 1.5, 0.0));
    }

    #[test]
    fn shard_bench_config_fills_the_big_mesh() {
        let cfg = shard_bench_config();
        assert_eq!((cfg.mesh_width, cfg.mesh_height), (16, 16));
        assert_eq!(cfg.n_gpu + cfg.n_cpu + cfg.n_mem, cfg.nodes());
        assert_eq!(cfg.scheme, Scheme::DelegatedReplies);
    }

    #[test]
    fn shard_bench_json_is_flat_and_balanced() {
        let leg = |shards, wall_s, per_s| ShardLeg {
            shards,
            wall_s,
            wall_s_mean: wall_s,
            wall_s_stddev: 0.0,
            sim_cycles_per_s: per_s,
        };
        let r = ShardBenchResult {
            mesh: (16, 16),
            warm: 10,
            cycles: 100,
            legs: vec![leg(1, 2.0, 50.0), leg(4, 0.5, 200.0)],
            identical_reports: true,
        };
        let j = r.to_json();
        assert!(j.contains("\"harness\":\"clognet bench --shards\""));
        assert!(j.contains("\"mesh\":\"16x16\""));
        assert!(j.contains("\"speedup_at_4\":4.000"));
        assert!(j.contains("\"identical_reports\":true"));
        assert!(j.contains("\"shards_gt_host_threads\":"));
        assert!(j.contains("\"shards\":1"));
        assert!(j.contains("\"speedup\":4.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // A leg that was never run reports no speedup rather than NaN.
        assert_eq!(r.speedup_at(2), 0.0);
    }

    #[test]
    fn control_bench_json_is_flat_and_balanced() {
        let mut sys = System::new(SystemConfig::default(), "HS", "bodytrack");
        sys.run(1_000);
        let r = sys.report();
        let mut dr = r.clone();
        dr.gpu_ipc = r.gpu_ipc * 2.0;
        let mut adaptive = r.clone();
        adaptive.gpu_ipc = r.gpu_ipc * 1.95;
        let result = ControlBenchResult {
            warm: 100,
            cycles: 400,
            points: vec![ControlPoint {
                gpu: "HS",
                cpu: "bodytrack",
                injbuf: 4,
                baseline: r.clone(),
                rp: r.clone(),
                dr,
                adaptive,
                actuations: 2,
            }],
            identical_reports: true,
        };
        // Adaptive is within 5% of the doubled-IPC DR leg and beats
        // the baseline/rp legs.
        assert!(result.within_5pct_everywhere());
        assert!(result.beats_worst_somewhere());
        assert_eq!(result.total_actuations(), 2);
        let j = result.to_json();
        assert!(j.contains("\"harness\":\"clognet bench --adaptive\""));
        assert!(j.contains("\"within_5pct_of_best_everywhere\":true"));
        assert!(j.contains("\"beats_worst_somewhere\":true"));
        assert!(j.contains("\"identical_reports\":true"));
        assert!(j.contains("\"actuations\":2"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn low_intensity_matrix_is_tiny_and_schemed() {
        let m = low_intensity_matrix();
        assert_eq!(m.len() % 2, 0, "each pairing runs under both schemes");
        for (cfg, _, _) in &m {
            assert_eq!(cfg.nodes(), 4, "low-intensity chips stay 2x2");
            assert_eq!(cfg.n_gpu + cfg.n_cpu + cfg.n_mem, cfg.nodes());
        }
    }
}
