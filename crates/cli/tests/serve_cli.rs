//! End-to-end service tests with the *real* simulation handler: what a
//! `clognet submit` prints must be byte-identical to an inline
//! `clognet run --json` of the same job, whether the report was
//! simulated fresh, served from the cache, or produced under
//! concurrent load.

use clognet_cli::config::config_from;
use clognet_cli::driver::measure;
use clognet_cli::serve_cmd::SimHandler;
use clognet_cli::{report, Args};
use clognet_serve::client::{Client, RetryPolicy};
use clognet_serve::server::{ServeConfig, Server};
use clognet_serve::wire::JobSpec;
use std::sync::Arc;

const WARM: u64 = 500;
const CYCLES: u64 = 1_500;

fn retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 20,
        base_ms: 5,
        cap_ms: 50,
        seed: 1,
    }
}

fn spec(gpu: &str, cpu: &str, scheme: &str) -> JobSpec {
    let mut s = JobSpec::new(gpu, cpu);
    s.warm = WARM;
    s.cycles = CYCLES;
    s.opts.insert("scheme".into(), scheme.into());
    s
}

/// The bytes `clognet run --json` would print for the same job.
fn inline_report(spec: &JobSpec) -> String {
    let args = Args::from_opts("run", &spec.opts);
    let cfg = config_from(&args).expect("valid job options");
    let scheme = cfg.scheme;
    let r = measure(cfg, &spec.gpu, &spec.cpu, spec.warm, spec.cycles, true, 1);
    report::report_json(scheme, &r)
}

fn serve(cfg: ServeConfig) -> (String, clognet_serve::ServerHandle) {
    let server = Server::bind(cfg, Arc::new(SimHandler)).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.spawn().expect("spawn");
    (addr, handle)
}

#[test]
fn served_reports_match_inline_runs_and_cache_hits_are_identical() {
    let (addr, handle) = serve(ServeConfig::default());
    let mut client = Client::connect(&addr, &retry()).unwrap();

    let job = spec("HS", "bodytrack", "dr");
    let first = client.submit(&job).unwrap();
    let second = client.submit(&job).unwrap();
    assert!(!first.cache_hit);
    assert!(second.cache_hit, "identical resubmission hits the cache");
    assert_eq!(first.report, second.report, "cached bytes are identical");
    assert_eq!(
        first.report,
        inline_report(&job),
        "service output == inline `clognet run --json`"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_submissions_match_single_threaded_inline_runs() {
    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 32,
        ..ServeConfig::default()
    };
    let (addr, handle) = serve(cfg);

    let jobs = [
        spec("HS", "bodytrack", "baseline"),
        spec("HS", "bodytrack", "dr"),
        spec("MM", "canneal", "baseline"),
        spec("MM", "canneal", "dr"),
        spec("BP", "ferret", "dr"),
        spec("NN", "canneal", "baseline"),
    ];
    let threads: Vec<_> = jobs
        .iter()
        .cloned()
        .map(|job| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, &retry()).unwrap();
                c.submit(&job).unwrap()
            })
        })
        .collect();
    let served: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for (job, result) in jobs.iter().zip(&served) {
        assert_eq!(
            result.report,
            inline_report(job),
            "concurrently-served {} + {} under {} diverged from the inline run",
            job.gpu,
            job.cpu,
            job.opts["scheme"]
        );
    }

    let mut client = Client::connect(&addr, &retry()).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn resolved_spelling_variants_share_one_simulation() {
    let (addr, handle) = serve(ServeConfig::default());
    let mut client = Client::connect(&addr, &retry()).unwrap();

    let first = client.submit(&spec("HS", "bodytrack", "dr")).unwrap();
    let second = client
        .submit(&spec("HS", "bodytrack", "delegated-replies"))
        .unwrap();
    assert_eq!(first.fingerprint, second.fingerprint);
    assert!(
        second.cache_hit,
        "resolved-equal config shares a cache entry"
    );
    assert_eq!(first.report, second.report);

    client.shutdown().unwrap();
    handle.join().unwrap();
}
