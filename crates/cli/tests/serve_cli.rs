//! End-to-end service tests with the *real* simulation handler: what a
//! `clognet submit` prints must be byte-identical to an inline
//! `clognet run --json` of the same job, whether the report was
//! simulated fresh, served from the cache, or produced under
//! concurrent load.

use clognet_cli::config::config_from;
use clognet_cli::driver::measure;
use clognet_cli::serve_cmd::SimHandler;
use clognet_cli::{report, Args};
use clognet_serve::client::{Client, RetryPolicy};
use clognet_serve::server::{ServeConfig, Server};
use clognet_serve::wire::JobSpec;
use std::sync::Arc;

const WARM: u64 = 500;
const CYCLES: u64 = 1_500;

fn retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 20,
        base_ms: 5,
        cap_ms: 50,
        seed: 1,
    }
}

fn spec(gpu: &str, cpu: &str, scheme: &str) -> JobSpec {
    let mut s = JobSpec::new(gpu, cpu);
    s.warm = WARM;
    s.cycles = CYCLES;
    s.opts.insert("scheme".into(), scheme.into());
    s
}

/// The bytes `clognet run --json` would print for the same job.
fn inline_report(spec: &JobSpec) -> String {
    let args = Args::from_opts("run", &spec.opts);
    let cfg = config_from(&args).expect("valid job options");
    let scheme = cfg.scheme;
    let r = measure(cfg, &spec.gpu, &spec.cpu, spec.warm, spec.cycles, true, 1);
    report::report_json(scheme, &r)
}

fn serve(cfg: ServeConfig) -> (String, clognet_serve::ServerHandle) {
    let server = Server::bind(cfg, Arc::new(SimHandler)).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.spawn().expect("spawn");
    (addr, handle)
}

#[test]
fn served_reports_match_inline_runs_and_cache_hits_are_identical() {
    let (addr, handle) = serve(ServeConfig::default());
    let mut client = Client::connect(&addr, &retry()).unwrap();

    let job = spec("HS", "bodytrack", "dr");
    let first = client.submit(&job).unwrap();
    let second = client.submit(&job).unwrap();
    assert!(!first.cache_hit);
    assert!(second.cache_hit, "identical resubmission hits the cache");
    assert_eq!(first.report, second.report, "cached bytes are identical");
    assert_eq!(
        first.report,
        inline_report(&job),
        "service output == inline `clognet run --json`"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_submissions_match_single_threaded_inline_runs() {
    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 32,
        ..ServeConfig::default()
    };
    let (addr, handle) = serve(cfg);

    let jobs = [
        spec("HS", "bodytrack", "baseline"),
        spec("HS", "bodytrack", "dr"),
        spec("MM", "canneal", "baseline"),
        spec("MM", "canneal", "dr"),
        spec("BP", "ferret", "dr"),
        spec("NN", "canneal", "baseline"),
    ];
    let threads: Vec<_> = jobs
        .iter()
        .cloned()
        .map(|job| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, &retry()).unwrap();
                c.submit(&job).unwrap()
            })
        })
        .collect();
    let served: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for (job, result) in jobs.iter().zip(&served) {
        assert_eq!(
            result.report,
            inline_report(job),
            "concurrently-served {} + {} under {} diverged from the inline run",
            job.gpu,
            job.cpu,
            job.opts["scheme"]
        );
    }

    let mut client = Client::connect(&addr, &retry()).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Regression: execution-mode knobs must not split the cache. A
/// sharded submit has to hit the entry a sequential submit wrote —
/// same fingerprint, same bytes.
#[test]
fn sharded_submit_hits_the_cache_entry_a_sequential_one_wrote() {
    let (addr, handle) = serve(ServeConfig::default());
    let mut client = Client::connect(&addr, &retry()).unwrap();

    let sequential = spec("HS", "bodytrack", "dr");
    let mut sharded = sequential.clone();
    sharded.opts.insert("shards".into(), "4".into());
    let mut no_ff = sequential.clone();
    no_ff.opts.insert("no-ff".into(), "true".into());

    let first = client.submit(&sequential).unwrap();
    assert!(!first.cache_hit);
    let second = client.submit(&sharded).unwrap();
    assert_eq!(first.fingerprint, second.fingerprint);
    assert!(second.cache_hit, "sharded submit shares the cache entry");
    assert_eq!(first.report, second.report);
    let third = client.submit(&no_ff).unwrap();
    assert!(third.cache_hit, "no-ff submit shares the cache entry");
    assert_eq!(first.report, third.report);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The snapshot tier: a job that misses the result cache but shares
/// its warmup prefix (same config + workloads + warm) with an earlier
/// job resumes from the cached snapshot — and the resumed report is
/// byte-identical to an inline cold run.
#[test]
fn warm_prefix_sharing_resumes_from_the_snapshot_tier() {
    let (addr, handle) = serve(ServeConfig::default());
    let mut client = Client::connect(&addr, &retry()).unwrap();

    let first_job = spec("HS", "bodytrack", "dr");
    let mut longer = first_job.clone();
    longer.cycles = CYCLES + 500; // New fingerprint, same warmup prefix.

    let first = client.submit(&first_job).unwrap();
    let second = client.submit(&longer).unwrap();
    assert!(!first.cache_hit);
    assert!(!second.cache_hit, "different cycles = different result");
    assert_ne!(first.fingerprint, second.fingerprint);
    assert_eq!(
        second.report,
        inline_report(&longer),
        "snapshot-resumed report diverged from a cold inline run"
    );
    let stats = client.stats().unwrap();
    assert!(
        stats.contains("\"snapshot_hits\":1"),
        "second job resumed from the snapshot tier: {stats}"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn resolved_spelling_variants_share_one_simulation() {
    let (addr, handle) = serve(ServeConfig::default());
    let mut client = Client::connect(&addr, &retry()).unwrap();

    let first = client.submit(&spec("HS", "bodytrack", "dr")).unwrap();
    let second = client
        .submit(&spec("HS", "bodytrack", "delegated-replies"))
        .unwrap();
    assert_eq!(first.fingerprint, second.fingerprint);
    assert!(
        second.cache_hit,
        "resolved-equal config shares a cache entry"
    );
    assert_eq!(first.report, second.report);

    client.shutdown().unwrap();
    handle.join().unwrap();
}
