//! CLI-level multi-chip checks: the driver path every subcommand now
//! routes through ([`driver::measure`] on a [`MultiChipSystem`]) must
//! be invisible for single-chip configs and engine-invariant for
//! packages — the same contracts the core-level property tests assert,
//! re-checked through the CLI's own plumbing.

use clognet_cli::driver::measure;
use clognet_core::System;
use clognet_proto::{FabricConfig, Scheme, SystemConfig};

#[test]
fn one_chip_cli_measurement_matches_a_plain_system() {
    // `clognet run` without `--chips` must produce exactly what it
    // produced before packages existed.
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    let via_cli = measure(cfg.clone(), "HS", "bodytrack", 400, 800, true, 1);
    let mut sys = System::new(cfg, "HS", "bodytrack");
    sys.run(400);
    sys.reset_stats();
    sys.run(800);
    assert_eq!(via_cli, sys.report());
}

#[test]
fn two_chip_cli_measurements_are_engine_invariant() {
    let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    cfg.fabric = Some(FabricConfig::default());
    let reference = measure(cfg.clone(), "HS", "bodytrack", 300, 700, true, 1);
    let no_ff = measure(cfg.clone(), "HS", "bodytrack", 300, 700, false, 1);
    let sharded = measure(cfg, "HS", "bodytrack", 300, 700, true, 2);
    assert_eq!(reference, no_ff, "--no-ff changed a 2-chip report");
    assert_eq!(reference, sharded, "--shards 2 changed a 2-chip report");
}
