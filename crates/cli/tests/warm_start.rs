//! Warm-start equivalence at the driver level: `--warm-from fork`
//! (simulate the warmup once, fork the snapshot into every variant)
//! must render byte-identical output to `--warm-from each` (re-warm
//! per variant), and a snapshot file written up front must fork the
//! same way. This is the same invariant the CI warm-start smoke
//! checks end-to-end through the binary.

use clognet_cli::driver::{
    parse_warm_start, run_compare_warm, run_sweep_warm, sweep_point_json, WarmStart,
};
use clognet_cli::{config_from, report, Args};
use clognet_core::System;
use clognet_proto::SystemConfig;
use std::collections::BTreeMap;

const GPU: &str = "HS";
const CPU: &str = "bodytrack";
const WARM: u64 = 600;
const CYCLES: u64 = 900;

fn base() -> SystemConfig {
    config_from(&Args::from_opts("run", &BTreeMap::new())).expect("default config")
}

fn sweep_lines(param: &str, values: &[u64], mode: &WarmStart) -> Vec<String> {
    let points = run_sweep_warm(&base(), param, values, GPU, CPU, WARM, CYCLES, 2, mode)
        .expect("warm sweep runs");
    points.iter().map(|p| sweep_point_json(param, p)).collect()
}

#[test]
fn forked_sweep_is_byte_identical_to_rewarmed_sweep() {
    let values = [2, 4, 8];
    let fork = sweep_lines("injbuf", &values, &WarmStart::Fork);
    let each = sweep_lines("injbuf", &values, &WarmStart::Each);
    assert_eq!(fork, each, "fork and each must render identical points");
}

#[test]
fn drmax_sweep_forks_deterministically() {
    let values = [1, 2, 4];
    let fork = sweep_lines("drmax", &values, &WarmStart::Fork);
    let again = sweep_lines("drmax", &values, &WarmStart::Fork);
    let each = sweep_lines("drmax", &values, &WarmStart::Each);
    assert_eq!(fork, again, "forked sweeps are run-to-run deterministic");
    assert_eq!(fork, each, "drmax applies identically after either warmup");
}

#[test]
fn forked_compare_is_byte_identical_to_rewarmed_compare() {
    let fork = run_compare_warm(&base(), GPU, CPU, WARM, CYCLES, 2, &WarmStart::Fork)
        .expect("warm compare runs");
    let each = run_compare_warm(&base(), GPU, CPU, WARM, CYCLES, 2, &WarmStart::Each)
        .expect("warm compare runs");
    assert_eq!(fork.len(), each.len());
    for ((fs, fr), (es, er)) in fork.iter().zip(&each) {
        assert_eq!(fs, es, "schemes come back in table order");
        assert_eq!(
            report::report_json(*fs, fr),
            report::report_json(*es, er),
            "{fs:?} diverged between fork and each"
        );
    }
}

#[test]
fn snapshot_files_fork_like_inline_snapshots() {
    let cfg = base();
    let mut sys = System::new(cfg.clone(), GPU, CPU);
    sys.run(WARM);
    let path = std::env::temp_dir().join(format!("warm_start_test_{}.snap", std::process::id()));
    std::fs::write(&path, sys.snapshot().into_bytes()).expect("write snapshot");

    let file_mode = parse_warm_start(path.to_str().expect("utf-8 temp path"));
    assert!(matches!(file_mode, WarmStart::File(_)));
    let values = [2, 6];
    let from_file = sweep_lines("injbuf", &values, &file_mode);
    let forked = sweep_lines("injbuf", &values, &WarmStart::Fork);
    std::fs::remove_file(&path).ok();
    assert_eq!(from_file, forked, "file-based warm start == inline fork");
}

#[test]
fn mismatched_snapshot_files_are_rejected_up_front() {
    let cfg = base();
    let mut sys = System::new(cfg.clone(), GPU, CPU);
    sys.run(WARM);
    let path =
        std::env::temp_dir().join(format!("warm_start_mismatch_{}.snap", std::process::id()));
    std::fs::write(&path, sys.snapshot().into_bytes()).expect("write snapshot");
    let mode = WarmStart::File(path.to_str().expect("utf-8 temp path").to_string());

    let wrong_bench =
        run_sweep_warm(&cfg, "injbuf", &[2], "MM", CPU, WARM, CYCLES, 1, &mode).unwrap_err();
    assert!(
        wrong_bench.0.contains("was taken on"),
        "bench mismatch names the snapshot's workloads: {wrong_bench:?}"
    );

    let mut other = cfg.clone();
    other.noc.channel_bytes *= 2;
    let wrong_cfg =
        run_sweep_warm(&other, "injbuf", &[2], GPU, CPU, WARM, CYCLES, 1, &mode).unwrap_err();
    assert!(
        wrong_cfg.0.contains("different configuration"),
        "config mismatch is detected: {wrong_cfg:?}"
    );

    let structural = run_sweep_warm(
        &cfg,
        "width",
        &[16],
        GPU,
        CPU,
        WARM,
        CYCLES,
        1,
        &WarmStart::Fork,
    )
    .unwrap_err();
    assert!(
        structural.0.contains("structural"),
        "structural params cannot be warm-forked: {structural:?}"
    );
    std::fs::remove_file(&path).ok();
}
