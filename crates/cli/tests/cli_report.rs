//! Tests for the CLI's report formatting and end-to-end option flow.

use clognet_cli::{config_from, Args};
use clognet_core::System;
use clognet_proto::Scheme;

fn parse(s: &str) -> Args {
    Args::parse(s.split_whitespace().map(String::from)).expect("parse")
}

#[test]
fn run_flow_from_arguments_to_report() {
    // The exact path `clognet run` takes, minus stdout.
    let args = parse("run --gpu NN --cpu swaptions --scheme dr --seed 5");
    let cfg = config_from(&args).expect("config");
    assert_eq!(cfg.scheme, Scheme::DelegatedReplies);
    let mut sys = System::new(cfg, "NN", "swaptions");
    sys.run(1_500);
    sys.reset_stats();
    sys.run(3_000);
    let r = sys.report();
    assert!(r.gpu_ipc > 0.0);
    clognet_cli::report::print_report(Scheme::DelegatedReplies, &r);
    clognet_cli::report::print_comparison(&[(Scheme::Baseline, r)]);
}

#[test]
fn sweep_parameters_translate() {
    for spec in [
        "run --topology fbfly",
        "run --topology dragonfly",
        "run --l1org dcl1 --cta dist",
        "run --scheme rp:3",
        "run --layout c",
        "run --vnets 1+3",
    ] {
        let args = parse(spec);
        let cfg = config_from(&args).expect(spec);
        // Must be instantiable.
        let _ = System::new(cfg, "HS", "vips");
    }
}

#[test]
fn summary_fields_survive_the_round_trip() {
    let args = parse("run --mesh 10x10 --scheme dr");
    let cfg = config_from(&args).expect("config");
    assert_eq!(cfg.nodes(), 100);
    assert_eq!(cfg.n_gpu + cfg.n_cpu + cfg.n_mem, 100);
    let sys = System::new(cfg, "MM", "dedup");
    assert_eq!(sys.layout().node_count(), 100);
}
