//! Determinism under parallelism: the `--json` documents `compare` and
//! `sweep` print must be **byte-identical** between `--threads 1` and
//! `--threads N` — and between fast-forward and the per-cycle
//! reference loop. Every job owns its `System` (seeded PRNG, no shared
//! state) and the runner returns results in submission order, so
//! neither thread count nor execution mode can change what's printed.

use clognet_cli::driver;
use clognet_cli::report;
use clognet_proto::SystemConfig;

const WARM: u64 = 300;
const CYCLES: u64 = 900;

#[test]
fn compare_json_identical_across_thread_counts_and_ff_modes() {
    let cfg = SystemConfig::default();
    let seq = driver::run_compare(&cfg, "HS", "bodytrack", WARM, CYCLES, 1, true, 1);
    let par = driver::run_compare(&cfg, "HS", "bodytrack", WARM, CYCLES, 4, true, 1);
    let no_ff = driver::run_compare(&cfg, "HS", "bodytrack", WARM, CYCLES, 4, false, 1);
    assert_eq!(
        report::comparison_json(&seq),
        report::comparison_json(&par),
        "compare --json differs between --threads 1 and --threads 4"
    );
    assert_eq!(
        report::comparison_json(&seq),
        report::comparison_json(&no_ff),
        "compare --json differs between fast-forward and --no-ff"
    );
}

#[test]
fn sweep_json_identical_across_thread_counts_and_ff_modes() {
    let cfg = SystemConfig::default();
    let values = [8u64, 16];
    let render = |points: &[driver::SweepPoint]| {
        points
            .iter()
            .map(|p| driver::sweep_point_json("width", p))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let seq = driver::run_sweep(
        &cfg, "width", &values, "MM", "canneal", WARM, CYCLES, 1, true, 1,
    )
    .unwrap();
    let par = driver::run_sweep(
        &cfg, "width", &values, "MM", "canneal", WARM, CYCLES, 3, true, 1,
    )
    .unwrap();
    let no_ff = driver::run_sweep(
        &cfg, "width", &values, "MM", "canneal", WARM, CYCLES, 3, false, 1,
    )
    .unwrap();
    assert_eq!(
        render(&seq),
        render(&par),
        "sweep --json differs between --threads 1 and --threads 3"
    );
    assert_eq!(
        render(&seq),
        render(&no_ff),
        "sweep --json differs between fast-forward and --no-ff"
    );
}
