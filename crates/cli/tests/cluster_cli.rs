//! The ISSUE-6 acceptance property, end to end with the *real*
//! simulation handler: a 3-node cluster returns byte-identical reports
//! for the same fingerprint no matter which node is asked — including
//! through a forced forward (gateway != owner) and through a replicated
//! cache read after the owning node is killed. The reference bytes are
//! an inline `clognet run --json` of the same job.

use clognet_cli::config::config_from;
use clognet_cli::driver::measure;
use clognet_cli::serve_cmd::SimHandler;
use clognet_cli::{report, Args};
use clognet_cluster::{ClusterConfig, ClusterHandle, ClusterNode};
use clognet_proto::{HashRing, DEFAULT_VNODES};
use clognet_serve::client::{Client, RetryPolicy};
use clognet_serve::server::{JobHandler, ServeConfig};
use clognet_serve::wire::JobSpec;
use std::sync::Arc;
use std::time::Duration;

const WARM: u64 = 500;
const CYCLES: u64 = 1_500;

fn retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 20,
        base_ms: 5,
        cap_ms: 50,
        seed: 1,
    }
}

fn spec(gpu: &str, cpu: &str, scheme: &str) -> JobSpec {
    let mut s = JobSpec::new(gpu, cpu);
    s.warm = WARM;
    s.cycles = CYCLES;
    s.opts.insert("scheme".into(), scheme.into());
    s
}

/// The bytes `clognet run --json` would print for the same job.
fn inline_report(spec: &JobSpec) -> String {
    let args = Args::from_opts("run", &spec.opts);
    let cfg = config_from(&args).expect("valid job options");
    let scheme = cfg.scheme;
    let r = measure(cfg, &spec.gpu, &spec.cpu, spec.warm, spec.cycles, true, 1);
    report::report_json(scheme, &r)
}

/// Boot a fully-meshed 3-node cluster with the real simulator.
fn boot_cluster() -> (Vec<String>, Vec<ClusterHandle>) {
    let cfg = ClusterConfig {
        serve: ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        },
        heartbeat: Duration::from_millis(50),
        ..ClusterConfig::default()
    };
    let nodes: Vec<ClusterNode> = (0..3)
        .map(|_| ClusterNode::bind(cfg.clone(), Arc::new(SimHandler)).expect("bind node"))
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.advertise().to_string()).collect();
    for node in &nodes {
        for addr in &addrs {
            if addr != node.advertise() {
                node.add_peer(addr);
            }
        }
    }
    let handles = nodes
        .into_iter()
        .map(|n| n.spawn().expect("spawn node"))
        .collect();
    (addrs, handles)
}

#[test]
fn three_node_cluster_serves_identical_bytes_through_forwards_and_owner_death() {
    let (addrs, handles) = boot_cluster();
    let job = spec("HS", "bodytrack", "dr");
    let fp = SimHandler.fingerprint(&job).expect("spec resolves");

    // The same ring the nodes build: owner + 1 replica (the default).
    let ring = HashRing::with_nodes(addrs.iter().map(String::as_str), DEFAULT_VNODES);
    let placement: Vec<String> = ring
        .placement(fp, 2)
        .into_iter()
        .map(String::from)
        .collect();
    assert_eq!(placement.len(), 2, "3 live nodes give owner + replica");
    let owner = placement[0].clone();
    let bystander = addrs
        .iter()
        .find(|a| !placement.contains(a))
        .expect("3 nodes, 2 placed: one bystander")
        .clone();

    // Property: every gateway returns the same bytes as the inline run.
    // Two of the three gateways are not the owner, so this exercises
    // forced forwards, and the bystander-as-gateway is a full
    // gateway -> owner -> reply relay.
    let expected = inline_report(&job);
    let mut results = Vec::new();
    for addr in &addrs {
        let mut client = Client::connect(addr, &retry().for_fingerprint(fp)).unwrap();
        let result = client.submit(&job).unwrap();
        assert_eq!(
            result.report, expected,
            "report via gateway {addr} diverged from the inline run"
        );
        results.push(result);
    }
    assert!(
        !results[0].cache_hit,
        "first submission anywhere simulates fresh"
    );
    assert!(
        results[1..].iter().all(|r| r.cache_hit),
        "resubmissions through other gateways are cache hits"
    );
    assert!(
        results
            .iter()
            .all(|r| r.fingerprint == results[0].fingerprint),
        "one job, one fingerprint, every gateway"
    );

    // Kill the owner. Its cache dies with it; the replica's copy and
    // the forward chain must keep the bytes available immediately —
    // no waiting for failure detection.
    let mut owner_client = Client::connect(&owner, &retry()).unwrap();
    owner_client.shutdown().unwrap();
    let mut survivors = Vec::new();
    for (addr, handle) in addrs.iter().zip(handles) {
        if *addr == owner {
            handle.join().expect("owner drains cleanly");
        } else {
            survivors.push((addr.clone(), handle));
        }
    }

    let mut client = Client::connect(&bystander, &retry().for_fingerprint(fp)).unwrap();
    let after_death = client.submit(&job).unwrap();
    assert!(
        after_death.cache_hit,
        "replicated entry survives the owner: resubmission is a cache hit"
    );
    assert_eq!(
        after_death.report, expected,
        "post-death bytes still match the inline run"
    );

    for (addr, handle) in survivors {
        let mut c = Client::connect(&addr, &retry()).unwrap();
        c.shutdown().unwrap();
        handle.join().expect("survivor drains cleanly");
    }
}
