//! Determinism under intra-run sharding: the `--json` documents
//! `compare` and `sweep` print must be **byte-identical** between
//! `--shards 1` (the sequential reference) and `--shards N` — in both
//! fast-forward modes. Sharding is an execution-mode knob like thread
//! count: it may only change wall-clock time, never a single output
//! byte.

use clognet_cli::driver;
use clognet_cli::report;
use clognet_proto::SystemConfig;

const WARM: u64 = 300;
const CYCLES: u64 = 900;

#[test]
fn compare_json_identical_across_shard_counts_and_ff_modes() {
    let cfg = SystemConfig::default();
    let seq = driver::run_compare(&cfg, "HS", "bodytrack", WARM, CYCLES, 1, true, 1);
    let sharded = driver::run_compare(&cfg, "HS", "bodytrack", WARM, CYCLES, 1, true, 4);
    let sharded_no_ff = driver::run_compare(&cfg, "HS", "bodytrack", WARM, CYCLES, 1, false, 4);
    assert_eq!(
        report::comparison_json(&seq),
        report::comparison_json(&sharded),
        "compare --json differs between --shards 1 and --shards 4"
    );
    assert_eq!(
        report::comparison_json(&seq),
        report::comparison_json(&sharded_no_ff),
        "compare --json differs between --shards 4 and --shards 4 --no-ff"
    );
}

#[test]
fn sweep_json_identical_across_shard_counts() {
    let cfg = SystemConfig::default();
    let values = [8u64, 16];
    let render = |points: &[driver::SweepPoint]| {
        points
            .iter()
            .map(|p| driver::sweep_point_json("width", p))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let seq = driver::run_sweep(
        &cfg, "width", &values, "MM", "canneal", WARM, CYCLES, 1, true, 1,
    )
    .unwrap();
    let sharded = driver::run_sweep(
        &cfg, "width", &values, "MM", "canneal", WARM, CYCLES, 1, true, 2,
    )
    .unwrap();
    assert_eq!(
        render(&seq),
        render(&sharded),
        "sweep --json differs between --shards 1 and --shards 2"
    );
}

#[test]
fn sharding_composes_with_worker_threads() {
    // The two levels of parallelism stack: N jobs on M worker threads,
    // each job itself sharded. Output must still match the fully
    // sequential run byte for byte.
    let cfg = SystemConfig::default();
    let seq = driver::run_compare(&cfg, "BP", "ferret", WARM, CYCLES, 1, true, 1);
    let stacked = driver::run_compare(&cfg, "BP", "ferret", WARM, CYCLES, 3, true, 2);
    assert_eq!(
        report::comparison_json(&seq),
        report::comparison_json(&stacked),
        "compare --json differs when jobs run threaded AND sharded"
    );
}
