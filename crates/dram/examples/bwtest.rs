use clognet_dram::{DramController, DramRequest};
use clognet_proto::{DramConfig, LineAddr};

fn main() {
    let mut m = DramController::new(DramConfig::default(), 7);
    let mut token = 0u64;
    let mut done = 0u64;
    let mut x = 12345u64;
    let mut completed = Vec::new();
    for now in 0..20_000 {
        while m.can_enqueue() {
            token += 1;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let _ = m.enqueue(
                DramRequest {
                    line: LineAddr(x >> 20),
                    is_write: false,
                    cpu: false,
                    token,
                },
                now,
            );
        }
        completed.clear();
        m.tick_into(now, &mut completed);
        done += completed.len() as u64;
    }
    println!(
        "random: {} lines / 20k cycles = {:.3}/cy rowhit {:.2}",
        done,
        done as f64 / 20000.0,
        m.stats().row_hit_rate()
    );
}
