use clognet_dram::{DramController, DramRequest};
use clognet_proto::{AddressMap, DramConfig, LineAddr};

fn main() {
    // Replicate memory node 0's view of BT: random tile lines filtered to
    // controller 0 under the system address map.
    let map = AddressMap::new(8, 0x0C10_64E7);
    let mut m = DramController::new(DramConfig::default(), 0x0C10_64E7);
    let tile_base = 0x5000_0000_0000u64 / 128;
    let mut x = 99u64;
    let mut lines = vec![];
    while lines.len() < 40_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let l = LineAddr(tile_base + (x >> 33) % 36_000);
        if map.controller_of(l).index() == 0 {
            lines.push(l);
        }
    }
    let mut it = lines.into_iter();
    let mut token = 0u64;
    let mut done = 0u64;
    let mut bank_hist = [0u32; 16];
    let mut completed = Vec::new();
    for now in 0..20_000 {
        while m.can_enqueue() {
            token += 1;
            let l = it.next().unwrap();
            bank_hist[m.bank_of(l)] += 1;
            let _ = m.enqueue(
                DramRequest {
                    line: l,
                    is_write: false,
                    cpu: false,
                    token,
                },
                now,
            );
        }
        completed.clear();
        m.tick_into(now, &mut completed);
        done += completed.len() as u64;
    }
    println!(
        "m0-like: {} lines / 20k = {:.3}/cy rowhit {:.2}",
        done,
        done as f64 / 20000.0,
        m.stats().row_hit_rate()
    );
    println!("bank histogram: {:?}", bank_hist);
}
