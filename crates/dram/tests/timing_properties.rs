//! Randomized tests for the FR-FCFS controller: token conservation,
//! bus bandwidth bounds, timing monotonicity, and CPU-priority
//! legality.
//!
//! Seeded with `clognet-rng` so every run explores the same cases.

use clognet_dram::{DramController, DramRequest};
use clognet_proto::{DramConfig, LineAddr};
use clognet_rng::{Rng, SeedableRng, SmallRng};
use std::collections::HashSet;

/// Test shorthand for one `tick_into` with a fresh buffer.
fn tick(m: &mut DramController, now: u64) -> Vec<u64> {
    let mut done = Vec::new();
    m.tick_into(now, &mut done);
    done
}

/// Every enqueued token completes exactly once, and never before the
/// minimum cold-access latency.
#[test]
fn tokens_conserved_and_latency_bounded() {
    let mut rng = SmallRng::seed_from_u64(0xD4A_0001);
    for case in 0..24 {
        let n = rng.gen_range(1..80usize);
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100_000u64)).collect();
        let seed = rng.gen_range(0..32u64);
        let cfg = DramConfig::default();
        let min_lat = (cfg.t_cl + cfg.burst) as u64; // row open, CAS only
        let mut m = DramController::new(cfg, seed);
        let mut pending: Vec<(u64, LineAddr)> = lines
            .iter()
            .enumerate()
            .map(|(i, &l)| (i as u64, LineAddr(l)))
            .collect();
        let mut issued_at: Vec<Option<u64>> = vec![None; pending.len()];
        let mut done: HashSet<u64> = HashSet::new();
        for now in 0..200_000u64 {
            if let Some(&(tok, line)) = pending.last() {
                if m.enqueue(
                    DramRequest {
                        line,
                        is_write: false,
                        cpu: false,
                        token: tok,
                    },
                    now,
                )
                .is_ok()
                {
                    issued_at[tok as usize] = Some(now);
                    pending.pop();
                }
            }
            for t in tick(&mut m, now) {
                assert!(done.insert(t), "case {case}: token {t} completed twice");
                let at = issued_at[t as usize].expect("completed before enqueue");
                assert!(
                    now >= at + min_lat,
                    "case {case}: token {t} too fast: {} < {min_lat}",
                    now - at
                );
            }
            if done.len() == lines.len() {
                break;
            }
        }
        assert_eq!(done.len(), lines.len(), "case {case}: requests lost");
    }
}

/// Sustained data bandwidth never exceeds one line per `burst` cycles
/// (the data-bus serialization bound).
#[test]
fn bandwidth_never_exceeds_bus() {
    let mut rng = SmallRng::seed_from_u64(0xD4A_0002);
    for _case in 0..16 {
        let seed = rng.gen_range(0..16u64);
        let stride = rng.gen_range(1..64u64);
        let cfg = DramConfig::default();
        let burst = cfg.burst as u64;
        let mut m = DramController::new(cfg, seed);
        let mut token = 0u64;
        let mut completions: Vec<u64> = Vec::new();
        for now in 0..5_000u64 {
            while m.can_enqueue() {
                token += 1;
                let _ = m.enqueue(
                    DramRequest {
                        line: LineAddr(token * stride),
                        is_write: false,
                        cpu: false,
                        token,
                    },
                    now,
                );
            }
            for _ in tick(&mut m, now) {
                completions.push(now);
            }
        }
        // In any window of W completions, the span must be >= (W-1)*burst.
        let w = 20;
        for win in completions.windows(w) {
            let span = win[w - 1] - win[0];
            assert!(
                span + 1 >= (w as u64 - 1) * burst,
                "{w} lines in {span} cycles beats the bus"
            );
        }
    }
}

/// CPU requests always finish no later than they would have as GPU
/// requests in the same arrival order (priority is never harmful).
#[test]
fn cpu_priority_helps_or_is_neutral() {
    let mut rng = SmallRng::seed_from_u64(0xD4A_0003);
    for _case in 0..16 {
        let n = rng.gen_range(2..40usize);
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50_000u64)).collect();
        let cpu_ix = rng.gen_range(0..40usize) % lines.len();
        let finish = |as_cpu: bool| -> u64 {
            let mut m = DramController::new(DramConfig::default(), 3);
            for (i, &l) in lines.iter().enumerate() {
                m.enqueue(
                    DramRequest {
                        line: LineAddr(l),
                        is_write: false,
                        cpu: as_cpu && i == cpu_ix,
                        token: i as u64,
                    },
                    0,
                )
                .unwrap();
            }
            for now in 0..500_000 {
                if tick(&mut m, now).contains(&(cpu_ix as u64)) {
                    return now;
                }
            }
            panic!("request never completed");
        };
        assert!(finish(true) <= finish(false));
    }
}
