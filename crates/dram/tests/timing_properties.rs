//! Property tests for the FR-FCFS controller: token conservation, bus
//! bandwidth bounds, timing monotonicity, and CPU-priority legality.

use clognet_dram::{DramController, DramRequest};
use clognet_proto::{DramConfig, LineAddr};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Every enqueued token completes exactly once, and never before the
    /// minimum cold-access latency.
    #[test]
    fn tokens_conserved_and_latency_bounded(
        lines in proptest::collection::vec(0u64..100_000, 1..80),
        seed in 0u64..32,
    ) {
        let cfg = DramConfig::default();
        let min_lat = (cfg.t_cl + cfg.burst) as u64; // row open, CAS only
        let mut m = DramController::new(cfg, seed);
        let mut pending: Vec<(u64, LineAddr)> = lines
            .iter()
            .enumerate()
            .map(|(i, &l)| (i as u64, LineAddr(l)))
            .collect();
        let mut issued_at: Vec<Option<u64>> = vec![None; pending.len()];
        let mut done: HashSet<u64> = HashSet::new();
        for now in 0..200_000u64 {
            if let Some(&(tok, line)) = pending.last() {
                if m
                    .enqueue(DramRequest { line, is_write: false, cpu: false, token: tok }, now)
                    .is_ok()
                {
                    issued_at[tok as usize] = Some(now);
                    pending.pop();
                }
            }
            for t in m.tick(now) {
                prop_assert!(done.insert(t), "token {} completed twice", t);
                let at = issued_at[t as usize].expect("completed before enqueue");
                prop_assert!(now >= at + min_lat, "token {} too fast: {} < {}", t, now - at, min_lat);
            }
            if done.len() == lines.len() {
                break;
            }
        }
        prop_assert_eq!(done.len(), lines.len(), "requests lost");
    }

    /// Sustained data bandwidth never exceeds one line per `burst`
    /// cycles (the data-bus serialization bound).
    #[test]
    fn bandwidth_never_exceeds_bus(seed in 0u64..16, stride in 1u64..64) {
        let cfg = DramConfig::default();
        let burst = cfg.burst as u64;
        let mut m = DramController::new(cfg, seed);
        let mut token = 0u64;
        let mut completions: Vec<u64> = Vec::new();
        for now in 0..5_000u64 {
            while m.can_enqueue() {
                token += 1;
                let _ = m.enqueue(
                    DramRequest {
                        line: LineAddr(token * stride),
                        is_write: false,
                        cpu: false,
                        token,
                    },
                    now,
                );
            }
            for _ in m.tick(now) {
                completions.push(now);
            }
        }
        // In any window of W completions, the span must be >= (W-1)*burst.
        let w = 20;
        for win in completions.windows(w) {
            let span = win[w - 1] - win[0];
            prop_assert!(
                span + 1 >= (w as u64 - 1) * burst,
                "{} lines in {} cycles beats the bus", w, span
            );
        }
    }

    /// CPU requests always finish no later than they would have as GPU
    /// requests in the same arrival order (priority is never harmful).
    #[test]
    fn cpu_priority_helps_or_is_neutral(
        lines in proptest::collection::vec(0u64..50_000, 2..40),
        cpu_ix in 0usize..40,
    ) {
        let cpu_ix = cpu_ix % lines.len();
        let finish = |as_cpu: bool| -> u64 {
            let mut m = DramController::new(DramConfig::default(), 3);
            for (i, &l) in lines.iter().enumerate() {
                m.enqueue(
                    DramRequest {
                        line: LineAddr(l),
                        is_write: false,
                        cpu: as_cpu && i == cpu_ix,
                        token: i as u64,
                    },
                    0,
                )
                .unwrap();
            }
            for now in 0..500_000 {
                if m.tick(now).contains(&(cpu_ix as u64)) {
                    return now;
                }
            }
            panic!("request never completed");
        };
        prop_assert!(finish(true) <= finish(false));
    }
}
