//! # clognet-dram
//!
//! An FR-FCFS GDDR5 memory-controller model with per-bank row-buffer
//! state and the Table-I timing constraints (tCL, tRP, tRC, tRAS, tRCD,
//! tRRD, tCCD, tWR). One [`DramController`] sits behind each memory
//! node's LLC slice; its data-bus burst occupancy (6 cycles per 128 B
//! line at the 1.4 GHz system clock) yields ~29.5 GB/s per controller —
//! 236 GB/s across the 8 controllers, matching the paper.
//!
//! First-Ready FCFS: among queued requests, one that hits an already-open
//! row is served first; otherwise the oldest request wins and pays the
//! precharge/activate penalty.
//!
//! ## Example
//!
//! ```
//! use clognet_dram::{DramController, DramRequest};
//! use clognet_proto::{DramConfig, LineAddr};
//!
//! let mut mc = DramController::new(DramConfig::default(), 0);
//! mc.enqueue(DramRequest { line: LineAddr(0), is_write: false, cpu: false, token: 1 }, 0)
//!     .unwrap();
//! let mut done = Vec::new();
//! for now in 0..100 {
//!     mc.tick_into(now, &mut done);
//! }
//! assert_eq!(done, vec![1]);
//! ```

use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{AddressMap, Cycle, DramConfig, LineAddr};
use std::collections::VecDeque;

/// A request queued at a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Line to access.
    pub line: LineAddr,
    /// Write (true) or read.
    pub is_write: bool,
    /// CPU-priority request: scheduled ahead of GPU requests within each
    /// FR-FCFS class (the paper gives CPU traffic priority throughout
    /// the memory system).
    pub cpu: bool,
    /// Caller-chosen tag returned on completion.
    pub token: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the next column command may issue on this bank.
    cas_ready: Cycle,
    /// Earliest cycle a precharge may issue (tRAS / tWR protection).
    pre_ready: Cycle,
    /// Earliest cycle an activate may issue (tRC from last activate).
    act_ready: Cycle,
}

/// Statistics for one controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (precharge + activate paid).
    pub row_misses: u64,
    /// Cycles requests waited in the queue (sum over requests).
    pub queue_wait_cycles: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
}

impl DramStats {
    /// Row-buffer hit rate in [0, 1].
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    token: u64,
    done_at: Cycle,
}

/// One FR-FCFS GDDR5 channel.
#[derive(Debug, Clone)]
pub struct DramController {
    cfg: DramConfig,
    map: AddressMap,
    banks: Vec<Bank>,
    queue: VecDeque<(DramRequest, Cycle)>,
    bus_free: Cycle,
    last_activate: Option<Cycle>,
    next_refresh: Cycle,
    in_flight: Vec<InFlight>,
    stats: DramStats,
}

impl DramController {
    /// Build a controller. `map_seed` seeds the bank/row hash (use the
    /// same seed as the system's [`AddressMap`]).
    pub fn new(cfg: DramConfig, map_seed: u64) -> Self {
        let banks = cfg.banks;
        let next_refresh = if cfg.t_refi == 0 {
            Cycle::MAX
        } else {
            Cycle::from(cfg.t_refi)
        };
        DramController {
            cfg,
            map: AddressMap::new(1, map_seed),
            banks: vec![Bank::default(); banks],
            queue: VecDeque::new(),
            bus_free: 0,
            last_activate: None,
            next_refresh,

            in_flight: Vec::new(),
            stats: DramStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Serialize the controller's mutable state (bank timers, queue in
    /// arrival order, bus/activate/refresh timers, in-flight bursts,
    /// statistics). Config and address map are rebuilt from the system
    /// configuration on restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.banks.len());
        for b in &self.banks {
            w.opt_u64(b.open_row);
            w.u64(b.cas_ready);
            w.u64(b.pre_ready);
            w.u64(b.act_ready);
        }
        w.usize(self.queue.len());
        for (req, at) in &self.queue {
            w.u64(req.line.0);
            w.bool(req.is_write);
            w.bool(req.cpu);
            w.u64(req.token);
            w.u64(*at);
        }
        w.u64(self.bus_free);
        w.opt_u64(self.last_activate);
        w.u64(self.next_refresh);
        w.usize(self.in_flight.len());
        for f in &self.in_flight {
            w.u64(f.token);
            w.u64(f.done_at);
        }
        w.u64(self.stats.reads);
        w.u64(self.stats.writes);
        w.u64(self.stats.row_hits);
        w.u64(self.stats.row_misses);
        w.u64(self.stats.queue_wait_cycles);
        w.u64(self.stats.refreshes);
    }

    /// Overlay state captured by [`DramController::save_state`] onto a
    /// controller built with the same config and map seed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.banks.len() {
            return Err(SnapError::Corrupt("dram bank count mismatch"));
        }
        for b in &mut self.banks {
            b.open_row = r.opt_u64()?;
            b.cas_ready = r.u64()?;
            b.pre_ready = r.u64()?;
            b.act_ready = r.u64()?;
        }
        let n = r.usize()?;
        if n > self.cfg.queue {
            return Err(SnapError::Corrupt("dram queue overflow"));
        }
        self.queue.clear();
        for _ in 0..n {
            let req = DramRequest {
                line: LineAddr(r.u64()?),
                is_write: r.bool()?,
                cpu: r.bool()?,
                token: r.u64()?,
            };
            let at = r.u64()?;
            self.queue.push_back((req, at));
        }
        self.bus_free = r.u64()?;
        self.last_activate = r.opt_u64()?;
        self.next_refresh = r.u64()?;
        let n = r.usize()?;
        self.in_flight.clear();
        for _ in 0..n {
            self.in_flight.push(InFlight {
                token: r.u64()?,
                done_at: r.u64()?,
            });
        }
        self.stats = DramStats {
            reads: r.u64()?,
            writes: r.u64()?,
            row_hits: r.u64()?,
            row_misses: r.u64()?,
            queue_wait_cycles: r.u64()?,
            refreshes: r.u64()?,
        };
        Ok(())
    }

    /// Requests waiting or in flight.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.in_flight.len()
    }

    /// Queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue can take another request.
    pub fn can_enqueue(&self) -> bool {
        self.queue.len() < self.cfg.queue
    }

    /// Free queue slots.
    pub fn free_slots(&self) -> usize {
        self.cfg.queue - self.queue.len()
    }

    /// The bank a line maps to (exposed for tests and bank-conflict
    /// studies).
    pub fn bank_of(&self, line: LineAddr) -> usize {
        self.map.bank_of(line, self.cfg.banks)
    }

    /// The DRAM row a line maps to.
    pub fn row_of(&self, line: LineAddr) -> u64 {
        self.map.row_of(line, self.cfg.banks)
    }

    /// Queue a request.
    ///
    /// # Errors
    ///
    /// Returns the request back if the queue is full.
    pub fn enqueue(&mut self, req: DramRequest, now: Cycle) -> Result<(), DramRequest> {
        if !self.can_enqueue() {
            return Err(req);
        }
        self.queue.push_back((req, now));
        Ok(())
    }

    /// Earliest future cycle at which [`Self::tick_into`] can make
    /// progress or mutate state, absent new [`Self::enqueue`] calls:
    ///
    /// - `Some(now)` — the queue is non-empty (a command can issue this
    ///   cycle, or at least the scheduler must be consulted);
    /// - `Some(t > now)` — idle until the first in-flight data burst
    ///   completes or the next all-bank refresh fires, whichever is
    ///   sooner (refresh mutates bank timers even on an idle channel);
    /// - `None` — empty queue, nothing in flight, refresh disabled.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.queue.is_empty() {
            return Some(now);
        }
        let mut horizon: Option<Cycle> = None;
        for f in &self.in_flight {
            let t = f.done_at.max(now);
            horizon = Some(horizon.map_or(t, |h: Cycle| h.min(t)));
        }
        if self.next_refresh != Cycle::MAX {
            let t = self.next_refresh.max(now);
            horizon = Some(horizon.map_or(t, |h: Cycle| h.min(t)));
        }
        horizon
    }

    /// Advance one cycle, appending the tokens whose data completed
    /// onto `done` (which is NOT cleared).
    pub fn tick_into(&mut self, now: Cycle, done: &mut Vec<u64>) {
        self.in_flight.retain(|f| {
            if f.done_at <= now {
                done.push(f.token);
                false
            } else {
                true
            }
        });
        // All-bank refresh once per tREFI: closes every row and stalls
        // the channel for tRFC.
        if now >= self.next_refresh {
            self.stats.refreshes += 1;
            self.next_refresh = now + Cycle::from(self.cfg.t_refi);
            let end = now + Cycle::from(self.cfg.t_rfc);
            for b in &mut self.banks {
                b.open_row = None;
                b.cas_ready = b.cas_ready.max(end);
                b.pre_ready = b.pre_ready.max(end);
                b.act_ready = b.act_ready.max(end);
            }
        }
        // One column command per cycle (shared command bus).
        if let Some(pos) = self.pick(now) {
            self.issue(pos, now);
        }
    }

    /// FR-FCFS pick: first queued request whose bank row is open and can
    /// issue now; otherwise the oldest request that can begin opening its
    /// row.
    fn pick(&self, now: Cycle) -> Option<usize> {
        // Four passes: row-ready CPU, row-ready any, openable CPU,
        // openable any — FR-FCFS with CPU priority inside each class.
        let row_ready = |req: &DramRequest| {
            let b = &self.banks[self.bank_of(req.line)];
            b.open_row == Some(self.row_of(req.line)) && b.cas_ready <= now
        };
        // tRRD is enforced by *scheduling* the activate forward in
        // `issue`, not by gating the issue decision — precharges of
        // different banks overlap, as in a real controller.
        let openable = |req: &DramRequest| {
            let b = &self.banks[self.bank_of(req.line)];
            b.pre_ready <= now && b.act_ready <= now
        };
        for cpu_only in [true, false] {
            if let Some(i) = self
                .queue
                .iter()
                .position(|(r, _)| (!cpu_only || r.cpu) && row_ready(r))
            {
                return Some(i);
            }
        }
        for cpu_only in [true, false] {
            if let Some(i) = self
                .queue
                .iter()
                .position(|(r, _)| (!cpu_only || r.cpu) && openable(r))
            {
                return Some(i);
            }
        }
        None
    }

    fn issue(&mut self, pos: usize, now: Cycle) {
        let (req, enq_at) = self.queue.remove(pos).expect("picked index");
        self.stats.queue_wait_cycles += now.saturating_sub(enq_at);
        let bank_ix = self.bank_of(req.line);
        let row = self.row_of(req.line);
        let t_cl = Cycle::from(self.cfg.t_cl);
        let t_rp = Cycle::from(self.cfg.t_rp);
        let t_rcd = Cycle::from(self.cfg.t_rcd);
        let t_ras = Cycle::from(self.cfg.t_ras);
        let t_rc = Cycle::from(self.cfg.t_rc);
        let t_ccd = Cycle::from(self.cfg.t_ccd);
        let t_wr = Cycle::from(self.cfg.t_wr);
        let burst = Cycle::from(self.cfg.burst);
        let last_activate = &mut self.last_activate;
        let bank = &mut self.banks[bank_ix];
        let cas_at = if bank.open_row == Some(row) {
            self.stats.row_hits += 1;
            now.max(bank.cas_ready)
        } else {
            self.stats.row_misses += 1;
            let pre_at = now.max(bank.pre_ready);
            let mut act_at = if bank.open_row.is_some() {
                (pre_at + t_rp).max(bank.act_ready)
            } else {
                pre_at.max(bank.act_ready)
            };
            // Activate-to-activate spacing across banks (tRRD).
            if let Some(last) = *last_activate {
                act_at = act_at.max(last + Cycle::from(self.cfg.t_rrd));
            }
            bank.open_row = Some(row);
            bank.act_ready = act_at + t_rc;
            bank.pre_ready = act_at + t_ras;
            *last_activate = Some(act_at);
            act_at + t_rcd
        };
        bank.cas_ready = cas_at + t_ccd;
        // Data transfer occupies the shared data bus for `burst` cycles.
        let data_start = (cas_at + t_cl).max(self.bus_free);
        self.bus_free = data_start + burst;
        if req.is_write {
            // Write recovery counts from the end of the data burst.
            bank.pre_ready = bank.pre_ready.max(data_start + burst + t_wr);
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.in_flight.push(InFlight {
            token: req.token,
            done_at: data_start + burst,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> DramController {
        DramController::new(DramConfig::default(), 7)
    }

    /// Test shorthand for one `tick_into` with a fresh buffer (the
    /// production loop reuses a buffer; tests prefer the return value).
    fn tick(m: &mut DramController, now: Cycle) -> Vec<u64> {
        let mut done = Vec::new();
        m.tick_into(now, &mut done);
        done
    }

    #[test]
    fn single_read_latency_matches_timing() {
        let mut m = mc();
        m.enqueue(
            DramRequest {
                line: LineAddr(0),
                is_write: false,
                cpu: false,
                token: 9,
            },
            0,
        )
        .unwrap();
        let mut done_at = None;
        for now in 0..200 {
            if let Some(&t) = tick(&mut m, now).first() {
                assert_eq!(t, 9);
                done_at = Some(now);
                break;
            }
        }
        // Cold bank: tRCD + tCL + burst = 12 + 12 + 6 = 30 (+ a cycle of
        // completion-scan slack).
        let d = done_at.expect("completed");
        assert!((30..=32).contains(&d), "completion at {d}");
    }

    fn same_bank_lines(m: &DramController) -> (LineAddr, LineAddr, LineAddr) {
        let base = LineAddr(0);
        let bank = m.bank_of(base);
        let row = m.row_of(base);
        let same_row = (1..100_000)
            .map(LineAddr)
            .find(|&l| m.bank_of(l) == bank && m.row_of(l) == row)
            .expect("same-row line");
        let other_row = (1..100_000)
            .map(LineAddr)
            .find(|&l| m.bank_of(l) == bank && m.row_of(l) != row)
            .expect("other-row line");
        (base, same_row, other_row)
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let (base, same_row, other_row) = same_bank_lines(&mc());
        let run = |lines: [LineAddr; 2]| -> Cycle {
            let mut m = mc();
            for (i, l) in lines.iter().enumerate() {
                m.enqueue(
                    DramRequest {
                        line: *l,
                        is_write: false,
                        cpu: false,
                        token: i as u64,
                    },
                    0,
                )
                .unwrap();
            }
            for now in 0..1000 {
                if tick(&mut m, now).contains(&1) {
                    return now;
                }
            }
            panic!("never completed");
        };
        let t_hit = run([base, same_row]);
        let t_conf = run([base, other_row]);
        assert!(
            t_hit + 10 <= t_conf,
            "row hit {t_hit} not faster than conflict {t_conf}"
        );
    }

    #[test]
    fn fr_fcfs_prefers_open_rows() {
        let mut m = mc();
        let (base, same_row, other_row) = same_bank_lines(&m);
        // Queue order: open row (0), conflict (1), row hit (2).
        // FR-FCFS must complete 2 before 1.
        m.enqueue(
            DramRequest {
                line: base,
                is_write: false,
                cpu: false,
                token: 0,
            },
            0,
        )
        .unwrap();
        m.enqueue(
            DramRequest {
                line: other_row,
                is_write: false,
                cpu: false,
                token: 1,
            },
            0,
        )
        .unwrap();
        m.enqueue(
            DramRequest {
                line: same_row,
                is_write: false,
                cpu: false,
                token: 2,
            },
            0,
        )
        .unwrap();
        let mut order = Vec::new();
        for now in 0..2000 {
            order.extend(tick(&mut m, now));
            if order.len() == 3 {
                break;
            }
        }
        assert_eq!(order.len(), 3, "all requests complete");
        let pos = |t: u64| order.iter().position(|&x| x == t).unwrap();
        assert!(
            pos(2) < pos(1),
            "row hit must bypass older conflict: {order:?}"
        );
        assert_eq!(m.stats().row_hits, 1);
    }

    #[test]
    fn bandwidth_approaches_burst_limit() {
        // Saturate with row-friendly traffic: sustained rate should
        // approach one line per `burst` cycles.
        let mut m = mc();
        let mut token = 0u64;
        let mut completed = 0u64;
        let horizon = 4000u64;
        for now in 0..horizon {
            while m.can_enqueue() {
                token += 1;
                m.enqueue(
                    DramRequest {
                        line: LineAddr(token / 4),
                        is_write: false,
                        cpu: false,
                        token,
                    },
                    now,
                )
                .unwrap();
            }
            completed += tick(&mut m, now).len() as u64;
        }
        let per_line = horizon as f64 / completed as f64;
        assert!(
            per_line < 9.0,
            "sustained {per_line:.2} cycles/line is too slow (burst=6)"
        );
        assert!(m.stats().row_hit_rate() > 0.5);
    }

    #[test]
    fn queue_full_rejects() {
        let cfg = DramConfig {
            queue: 2,
            ..DramConfig::default()
        };
        let mut m = DramController::new(cfg, 0);
        let rq = |t| DramRequest {
            line: LineAddr(t),
            is_write: false,
            cpu: false,
            token: t,
        };
        assert!(m.enqueue(rq(0), 0).is_ok());
        assert!(m.enqueue(rq(1), 0).is_ok());
        assert!(m.enqueue(rq(2), 0).is_err());
        assert!(!m.can_enqueue());
    }

    #[test]
    fn writes_complete_and_are_counted() {
        let mut m = mc();
        m.enqueue(
            DramRequest {
                line: LineAddr(5),
                is_write: true,
                cpu: false,
                token: 1,
            },
            0,
        )
        .unwrap();
        let mut got = false;
        for now in 0..200 {
            if !tick(&mut m, now).is_empty() {
                got = true;
                break;
            }
        }
        assert!(got);
        assert_eq!(m.stats().writes, 1);
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let m = mc();
        let (base, _, other_row) = same_bank_lines(&m);
        // A write followed by a row conflict must respect tWR before the
        // precharge: compare against read-then-conflict.
        let run = |is_write: bool| -> Cycle {
            let mut m = mc();
            m.enqueue(
                DramRequest {
                    line: base,
                    is_write,
                    cpu: false,
                    token: 0,
                },
                0,
            )
            .unwrap();
            m.enqueue(
                DramRequest {
                    line: other_row,
                    is_write: false,
                    cpu: false,
                    token: 1,
                },
                0,
            )
            .unwrap();
            for now in 0..2000 {
                if tick(&mut m, now).contains(&1) {
                    return now;
                }
            }
            panic!("never completed");
        };
        let after_read = run(false);
        let after_write = run(true);
        assert!(
            after_write > after_read,
            "tWR ignored: write {after_write} <= read {after_read}"
        );
    }

    #[test]
    fn banks_overlap_their_latencies() {
        let mut m = mc();
        let mut lines = Vec::new();
        let mut bank_seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            let l = LineAddr(i * 131);
            if bank_seen.insert(m.bank_of(l)) {
                lines.push(l);
                if lines.len() == 8 {
                    break;
                }
            }
        }
        for (i, &l) in lines.iter().enumerate() {
            m.enqueue(
                DramRequest {
                    line: l,
                    is_write: false,
                    cpu: false,
                    token: i as u64,
                },
                0,
            )
            .unwrap();
        }
        let mut last = 0;
        let mut n = 0;
        for now in 0..2000 {
            let d = tick(&mut m, now);
            if !d.is_empty() {
                last = now;
                n += d.len();
            }
            if n == 8 {
                break;
            }
        }
        assert_eq!(n, 8);
        // Serial row-misses would take ~8 * 30 = 240 cycles; overlapped
        // execution is bounded by bus serialization + tRRD spacing.
        assert!(last < 120, "banks did not overlap: finished at {last}");
    }

    #[test]
    fn cpu_requests_bypass_gpu_queue() {
        let mut m = mc();
        // Fill the queue with GPU traffic, then one CPU request; the CPU
        // request must complete before most of the GPU backlog.
        for t in 0..20u64 {
            m.enqueue(
                DramRequest {
                    line: LineAddr(t * 997),
                    is_write: false,
                    cpu: false,
                    token: t,
                },
                0,
            )
            .unwrap();
        }
        m.enqueue(
            DramRequest {
                line: LineAddr(123_456),
                is_write: false,
                cpu: true,
                token: 99,
            },
            0,
        )
        .unwrap();
        let mut order = Vec::new();
        for now in 0..5_000 {
            order.extend(tick(&mut m, now));
            if order.len() == 21 {
                break;
            }
        }
        let pos_cpu = order.iter().position(|&t| t == 99).unwrap();
        assert!(pos_cpu <= 4, "CPU request served {pos_cpu}th of 21");
    }

    #[test]
    fn refresh_closes_rows_and_stalls() {
        let cfg = DramConfig {
            t_refi: 100,
            t_rfc: 50,
            ..DramConfig::default()
        };
        let mut m = DramController::new(cfg, 7);
        // Open a row well before the refresh.
        m.enqueue(
            DramRequest {
                line: LineAddr(0),
                is_write: false,
                cpu: false,
                token: 0,
            },
            0,
        )
        .unwrap();
        for now in 0..95 {
            tick(&mut m, now);
        }
        // Request arriving at the refresh boundary pays tRFC even
        // though it targets the previously open row.
        m.enqueue(
            DramRequest {
                line: LineAddr(0),
                is_write: false,
                cpu: false,
                token: 1,
            },
            100,
        )
        .unwrap();
        let mut done_at = None;
        for now in 100..500 {
            if tick(&mut m, now).contains(&1) {
                done_at = Some(now);
                break;
            }
        }
        let d = done_at.expect("completed");
        // Refresh at 100 + tRFC 50 + row reopen (tRCD 12) + tCL 12 + burst 6.
        assert!(d >= 150, "refresh not honored: done at {d}");
        assert!(m.stats().refreshes >= 1);
    }

    #[test]
    fn refresh_disabled_with_zero_trefi() {
        let cfg = DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        };
        let mut m = DramController::new(cfg, 7);
        for now in 0..50_000 {
            tick(&mut m, now);
        }
        assert_eq!(m.stats().refreshes, 0);
    }

    #[test]
    fn next_event_tracks_completions_and_refresh() {
        let cfg = DramConfig {
            t_refi: 100,
            ..DramConfig::default()
        };
        let mut m = DramController::new(cfg, 7);
        // Queued work is always same-cycle work.
        m.enqueue(
            DramRequest {
                line: LineAddr(0),
                is_write: false,
                cpu: false,
                token: 0,
            },
            0,
        )
        .unwrap();
        assert_eq!(m.next_event(0), Some(0));
        // After issue: horizon is the in-flight completion; no event may
        // fire strictly before it.
        tick(&mut m, 0);
        let h = m.next_event(1).expect("in-flight work");
        assert!(h > 1, "in-flight completion is in the future");
        for now in 1..h {
            assert!(tick(&mut m, now).is_empty(), "overshoot at {now}");
        }
        assert_eq!(tick(&mut m, h), vec![0]);
        // Idle channel: only the refresh timer remains.
        let h2 = m.next_event(h + 1).expect("refresh pending");
        assert!(h2 >= 100 && m.queue_len() == 0);
        // Refresh disabled: a drained controller reports None.
        let mut quiet = DramController::new(
            DramConfig {
                t_refi: 0,
                ..DramConfig::default()
            },
            7,
        );
        assert_eq!(quiet.next_event(0), None);
        tick(&mut quiet, 0);
        assert_eq!(quiet.next_event(1), None);
    }

    #[test]
    fn queue_wait_is_accounted() {
        let mut m = mc();
        for t in 0..4 {
            m.enqueue(
                DramRequest {
                    line: LineAddr(t * 1000),
                    is_write: false,
                    cpu: false,
                    token: t,
                },
                0,
            )
            .unwrap();
        }
        for now in 0..500 {
            tick(&mut m, now);
        }
        assert!(m.stats().queue_wait_cycles > 0);
    }
}
