//! # clognet-cpu
//!
//! The CPU side of the chip: an in-order-window trace replayer in the
//! spirit of Netrace. Each core draws accesses from a deterministic
//! PARSEC-profile stream at the benchmark's intrinsic rate, keeps at
//! most `window` misses outstanding (the dependency model — small
//! windows are latency-sensitive), and stalls when the window is full.
//!
//! CPU *performance* is reported as progress relative to an unloaded
//! core: the fraction of intrinsic-rate accesses the core managed to
//! process. Network latency reductions (what Delegated Replies delivers
//! by un-blocking the memory nodes) translate directly into this metric,
//! exactly as Netrace translates packet latency into CPU slowdown.
//!
//! The CPU domain uses MESI directory coherence in the paper; our CPU
//! benchmarks use core-private data (PARSEC working sets partitioned per
//! core), so the directory never generates invalidations and is modeled
//! as plain home-node LLC access. Delegated Replies never crosses the
//! CPU-GPU coherence boundary (Section IV).
//!
//! ## Example
//!
//! ```
//! use clognet_cpu::{CpuOut, CpuSubsystem};
//! use clognet_proto::CpuConfig;
//! use clognet_workloads::cpu_benchmark;
//!
//! let mut cpu = CpuSubsystem::new(
//!     CpuConfig::default(),
//!     cpu_benchmark("vips").expect("PARSEC"),
//!     16,
//!     42,
//! );
//! let budget = vec![4; 16];
//! let mut out = Vec::new();
//! for now in 0..1000 {
//!     cpu.tick(now, &budget, &mut out);
//! }
//! // vips at rate 0.06 over 16 cores must have issued some requests.
//! assert!(!out.is_empty());
//! ```

use clognet_cache::SetAssocCache;
use clognet_proto::snap::{SnapError, SnapReader, SnapWriter};
use clognet_proto::{Addr, CoreId, CpuConfig, Cycle, FxHashMap, LineAddr};
use clognet_workloads::{CpuProfile, CpuStream, MemAccess};

/// A message a CPU core sends to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuOut {
    /// Load request to the line's home LLC slice.
    Read {
        /// Line to fetch.
        line: LineAddr,
    },
    /// Write-through store.
    Write {
        /// Line stored.
        line: LineAddr,
    },
}

/// Per-core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuCoreStats {
    /// Accesses processed (hits + issued misses + issued writes).
    pub processed: u64,
    /// Accesses the unloaded core would have processed (intrinsic-rate
    /// opportunities).
    pub opportunities: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// Reads sent to the memory system.
    pub reads: u64,
    /// Writes sent to the memory system.
    pub writes: u64,
    /// Cycles stalled with a ready access that could not issue.
    pub stall_cycles: u64,
    /// Sum of read round-trip latencies (issue → data), in cycles.
    pub read_latency_sum: u64,
    /// Reads completed (for the latency mean).
    pub reads_done: u64,
}

impl CpuCoreStats {
    /// Progress relative to an unloaded core, in (0, 1].
    pub fn performance(&self) -> f64 {
        if self.opportunities == 0 {
            1.0
        } else {
            self.processed as f64 / self.opportunities as f64
        }
    }

    /// Mean read round-trip latency in cycles.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_done as f64
        }
    }
}

#[derive(Debug)]
struct Core {
    stream: CpuStream,
    l1: SetAssocCache<()>,
    outstanding: usize,
    pending: FxHashMap<LineAddr, Vec<Cycle>>,
    deferred: Option<MemAccess>,
    stats: CpuCoreStats,
}

/// All CPU cores (they all run the same PARSEC benchmark, per Table II).
#[derive(Debug)]
pub struct CpuSubsystem {
    cfg: CpuConfig,
    profile: CpuProfile,
    cores: Vec<Core>,
}

impl CpuSubsystem {
    /// Build `n_cores` cores running `profile`.
    pub fn new(cfg: CpuConfig, profile: CpuProfile, n_cores: usize, seed: u64) -> Self {
        let cores = (0..n_cores)
            .map(|i| Core {
                stream: CpuStream::new(profile.clone(), CoreId(i as u16), seed),
                l1: SetAssocCache::new(cfg.l1),
                outstanding: 0,
                pending: FxHashMap::default(),
                deferred: None,
                stats: CpuCoreStats::default(),
            })
            .collect();
        CpuSubsystem {
            cfg,
            profile,
            cores,
        }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The PARSEC profile in use.
    pub fn profile(&self) -> &CpuProfile {
        &self.profile
    }

    /// Per-core statistics.
    pub fn stats(&self, core: CoreId) -> CpuCoreStats {
        self.cores[core.index()].stats
    }

    /// Zero every core's counters (warmup exclusion); caches and pending
    /// misses keep their state.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.stats = CpuCoreStats::default();
        }
    }

    /// Mean performance over all cores.
    pub fn mean_performance(&self) -> f64 {
        let n = self.cores.len() as f64;
        self.cores
            .iter()
            .map(|c| c.stats.performance())
            .sum::<f64>()
            / n
    }

    /// Total operations processed over all cores (the CPU throughput
    /// numerator the telemetry sampler differences per epoch).
    pub fn total_processed(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.processed).sum()
    }

    /// Mean read latency over all cores (cycles).
    pub fn mean_read_latency(&self) -> f64 {
        let (sum, n) = self.cores.iter().fold((0u64, 0u64), |(s, n), c| {
            (s + c.stats.read_latency_sum, n + c.stats.reads_done)
        });
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Serialize all mutable state; the config/profile identity comes
    /// from construction. Pending-miss maps are written sorted by line
    /// so hash-map iteration order never reaches the byte stream.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.cores.len());
        for c in &self.cores {
            c.stream.save_state(w);
            c.l1.save_state(w, |_, ()| {});
            w.usize(c.outstanding);
            let mut lines: Vec<LineAddr> = c.pending.keys().copied().collect();
            lines.sort_unstable();
            w.usize(lines.len());
            for line in lines {
                w.u64(line.0);
                let issues = &c.pending[&line];
                w.usize(issues.len());
                for &t in issues {
                    w.u64(t);
                }
            }
            match c.deferred {
                Some(a) => {
                    w.bool(true);
                    w.u64(a.addr.0);
                    w.bool(a.write);
                }
                None => w.bool(false),
            }
            let s = &c.stats;
            for v in [
                s.processed,
                s.opportunities,
                s.l1_hits,
                s.reads,
                s.writes,
                s.stall_cycles,
                s.read_latency_sum,
                s.reads_done,
            ] {
                w.u64(v);
            }
        }
    }

    /// Overlay state captured by [`CpuSubsystem::save_state`] onto a
    /// subsystem built with the same config/profile.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.cores.len() {
            return Err(SnapError::Corrupt("cpu core count mismatch"));
        }
        for c in &mut self.cores {
            c.stream.load_state(r)?;
            c.l1.load_state(r, |_| Ok(()))?;
            c.outstanding = r.usize()?;
            c.pending.clear();
            for _ in 0..r.usize()? {
                let line = LineAddr(r.u64()?);
                let m = r.usize()?;
                let mut issues = Vec::with_capacity(m.min(4096));
                for _ in 0..m {
                    issues.push(r.u64()?);
                }
                c.pending.insert(line, issues);
            }
            c.deferred = if r.bool()? {
                Some(MemAccess {
                    addr: Addr(r.u64()?),
                    write: r.bool()?,
                })
            } else {
                None
            };
            c.stats = CpuCoreStats {
                processed: r.u64()?,
                opportunities: r.u64()?,
                l1_hits: r.u64()?,
                reads: r.u64()?,
                writes: r.u64()?,
                stall_cycles: r.u64()?,
                read_latency_sum: r.u64()?,
                reads_done: r.u64()?,
            };
        }
        Ok(())
    }

    /// Advance all cores one cycle. `budget[i]` bounds how many messages
    /// core `i` may emit.
    pub fn tick(&mut self, now: Cycle, budget: &[usize], out: &mut Vec<(CoreId, CpuOut)>) {
        let window = self.profile.window;
        for (i, core) in self.cores.iter_mut().enumerate() {
            let id = CoreId(i as u16);
            let b = budget[i];
            // Intrinsic-rate opportunities accrue every cycle, whether or
            // not the pipeline is blocked — that is what makes the
            // performance metric latency-aware.
            let opportunity = core.stream.wants_issue();
            if opportunity {
                core.stats.opportunities += 1;
            }
            if core.deferred.is_none() && opportunity {
                core.deferred = Some(core.stream.next_access());
            }
            let Some(access) = core.deferred else {
                continue;
            };
            let line = access.addr.line(self.cfg.l1.line_bytes as u64);
            if access.write {
                if b == 0 {
                    core.stats.stall_cycles += 1;
                    continue;
                }
                // Write-through, no-allocate, no stall (store buffer).
                core.l1.invalidate(line);
                out.push((id, CpuOut::Write { line }));
                core.stats.writes += 1;
                core.stats.processed += 1;
                core.deferred = None;
                continue;
            }
            // Stall test first, via the non-mutating `probe`: a stalled
            // cycle must leave the cache untouched (no LRU/stat update)
            // so the fast-forward engine can integrate skipped stall
            // cycles without replaying them.
            if (core.outstanding >= window || b == 0)
                && !core.l1.probe(line)
                && !core.pending.contains_key(&line)
            {
                core.stats.stall_cycles += 1;
                continue;
            }
            if core.l1.access(line) {
                core.stats.l1_hits += 1;
                core.stats.processed += 1;
                core.deferred = None;
                continue;
            }
            if core.pending.contains_key(&line) {
                // Merge with the in-flight miss.
                core.stats.processed += 1;
                core.deferred = None;
                continue;
            }
            core.outstanding += 1;
            core.pending.entry(line).or_default().push(now);
            out.push((id, CpuOut::Read { line }));
            core.stats.reads += 1;
            core.stats.processed += 1;
            core.deferred = None;
        }
    }

    /// Earliest future cycle at which this subsystem can spontaneously
    /// change state, absent new input (replies).
    ///
    /// - `Some(now)` — some core has same-cycle work: a deferred access
    ///   that can proceed, or an issue draw landing this cycle.
    /// - `Some(t > now)` — all cores idle or stalled until `t`, when the
    ///   first idle core's next issue draw comes up `true`.
    /// - `None` — every core is window-stalled; only a reply can wake
    ///   the subsystem.
    ///
    /// Callers must guarantee nonzero emission budgets over the skipped
    /// span (the fast-forward engine only engages with empty outboxes);
    /// budget-zero stalls are therefore not modeled here. Peeked issue
    /// draws are buffered inside each [`CpuStream`], so calling this
    /// never perturbs the random stream.
    pub fn next_event(&mut self, now: Cycle) -> Option<Cycle> {
        /// How many issue draws to verify ahead; a core with no `true`
        /// draw in this window reports `now + PEEK_CAP` as a
        /// conservative horizon and is re-peeked there.
        const PEEK_CAP: u64 = 1024;
        let window = self.profile.window;
        let mut horizon: Option<Cycle> = None;
        for core in &mut self.cores {
            if let Some(access) = core.deferred {
                let line = access.addr.line(self.cfg.l1.line_bytes as u64);
                let stalled = !access.write
                    && !core.l1.probe(line)
                    && !core.pending.contains_key(&line)
                    && core.outstanding >= window;
                if stalled {
                    // Unblocks only when a reply restores the window.
                    continue;
                }
                return Some(now);
            }
            let gap = core.stream.peek_issue_gap(PEEK_CAP);
            if gap == 0 {
                return Some(now);
            }
            let t = now + gap;
            horizon = Some(horizon.map_or(t, |h: Cycle| h.min(t)));
        }
        horizon
    }

    /// Integrate `span` skipped cycles: consume each core's issue draws
    /// (accruing intrinsic-rate opportunities exactly as `span` calls of
    /// `tick` would) and account stall cycles for window-stalled cores.
    /// Only valid over a span where [`Self::next_event`] reported no
    /// event strictly inside it.
    pub fn advance(&mut self, span: u64) {
        for core in &mut self.cores {
            core.stats.opportunities += core.stream.consume_issues(span);
            if core.deferred.is_some() {
                core.stats.stall_cycles += span;
            }
        }
    }

    /// A read reply arrived for `core`.
    pub fn deliver_data(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        let c = &mut self.cores[core.index()];
        if let Some(issues) = c.pending.remove(&line) {
            for t in issues {
                c.stats.read_latency_sum += now - t;
                c.stats.reads_done += 1;
            }
            c.outstanding -= 1;
        }
        c.l1.fill(line, ());
    }

    /// A write acknowledgment arrived (stores are fire-and-forget; the
    /// ack only matters for network accounting).
    pub fn deliver_write_ack(&mut self, _core: CoreId, _line: LineAddr) {}

    #[cfg(test)]
    fn outstanding(&self, core: CoreId) -> usize {
        self.cores[core.index()].outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clognet_workloads::cpu_benchmark;

    fn subsystem(name: &str) -> CpuSubsystem {
        CpuSubsystem::new(CpuConfig::default(), cpu_benchmark(name).unwrap(), 4, 7)
    }

    /// Drive the subsystem with a fixed reply latency.
    fn run(sub: &mut CpuSubsystem, cycles: u64, lat: u64) {
        let budget = vec![4usize; sub.n_cores()];
        let mut in_flight: Vec<(u64, CoreId, LineAddr)> = Vec::new();
        for now in 0..cycles {
            let mut due = Vec::new();
            in_flight.retain(|&(t, c, l)| {
                if t <= now {
                    due.push((c, l));
                    false
                } else {
                    true
                }
            });
            for (c, l) in due {
                sub.deliver_data(c, l, now);
            }
            let mut out = Vec::new();
            sub.tick(now, &budget, &mut out);
            for (c, o) in out {
                if let CpuOut::Read { line } = o {
                    in_flight.push((now + lat, c, line));
                }
            }
        }
    }

    /// Like `run`, but jump over quiescent spans with
    /// `next_event`/`advance` instead of ticking every cycle.
    fn run_ff(sub: &mut CpuSubsystem, cycles: u64, lat: u64) {
        let budget = vec![4usize; sub.n_cores()];
        let mut in_flight: Vec<(u64, CoreId, LineAddr)> = Vec::new();
        let mut now = 0u64;
        while now < cycles {
            let next_reply = in_flight.iter().map(|&(t, _, _)| t).min();
            if next_reply != Some(now) {
                let horizon = match sub.next_event(now) {
                    Some(t) if t == now => None,
                    Some(t) => Some(t),
                    None => Some(cycles),
                };
                if let Some(h) = horizon {
                    let mut h = h.min(cycles);
                    if let Some(t) = next_reply {
                        h = h.min(t);
                    }
                    if h > now {
                        sub.advance(h - now);
                        now = h;
                        continue;
                    }
                }
            }
            let mut due = Vec::new();
            in_flight.retain(|&(t, c, l)| {
                if t <= now {
                    due.push((c, l));
                    false
                } else {
                    true
                }
            });
            for (c, l) in due {
                sub.deliver_data(c, l, now);
            }
            let mut out = Vec::new();
            sub.tick(now, &budget, &mut out);
            for (c, o) in out {
                if let CpuOut::Read { line } = o {
                    in_flight.push((now + lat, c, line));
                }
            }
            now += 1;
        }
    }

    #[test]
    fn fast_forward_integration_matches_per_cycle_reference() {
        // Long reply latencies create window-stall spans; low rates
        // create idle spans. Both must integrate exactly.
        for (name, lat) in [("blackscholes", 200), ("canneal", 500)] {
            let mut reference = subsystem(name);
            run(&mut reference, 30_000, lat);
            let mut ff = subsystem(name);
            run_ff(&mut ff, 30_000, lat);
            for i in 0..4 {
                assert_eq!(
                    ff.stats(CoreId(i)),
                    reference.stats(CoreId(i)),
                    "{name} core {i} diverged under fast-forward"
                );
            }
        }
    }

    #[test]
    fn unloaded_core_keeps_up() {
        let mut s = subsystem("blackscholes");
        run(&mut s, 20_000, 30);
        let perf = s.mean_performance();
        assert!(perf > 0.95, "unloaded perf {perf}");
    }

    #[test]
    fn long_latency_hurts_small_window_benchmarks_more() {
        // canneal (window 4, cache-hostile) vs dedup (window 16).
        let mut fast_can = subsystem("canneal");
        run(&mut fast_can, 30_000, 50);
        let mut slow_can = subsystem("canneal");
        run(&mut slow_can, 30_000, 800);
        let mut fast_dedup = subsystem("dedup");
        run(&mut fast_dedup, 30_000, 50);
        let mut slow_dedup = subsystem("dedup");
        run(&mut slow_dedup, 30_000, 800);
        let drop_can = fast_can.mean_performance() / slow_can.mean_performance();
        let drop_dedup = fast_dedup.mean_performance() / slow_dedup.mean_performance();
        assert!(
            drop_can > drop_dedup,
            "latency sensitivity inverted: canneal x{drop_can:.2} vs dedup x{drop_dedup:.2}"
        );
        assert!(drop_can > 1.2, "canneal barely affected: {drop_can:.2}");
    }

    #[test]
    fn latency_is_measured() {
        let mut s = subsystem("canneal");
        run(&mut s, 10_000, 123);
        let lat = s.mean_read_latency();
        assert!(
            (120.0..=130.0).contains(&lat),
            "measured latency {lat} vs injected 123"
        );
    }

    #[test]
    fn window_limits_outstanding() {
        let mut s = subsystem("canneal"); // window 4
        let budget = vec![8usize; s.n_cores()];
        // Never reply: outstanding must cap at the window.
        let mut reads_per_core = vec![0usize; s.n_cores()];
        for now in 0..50_000 {
            let mut out = Vec::new();
            s.tick(now, &budget, &mut out);
            for (c, o) in out {
                if matches!(o, CpuOut::Read { .. }) {
                    reads_per_core[c.index()] += 1;
                }
            }
        }
        for (i, &r) in reads_per_core.iter().enumerate() {
            assert!(r <= 4, "core {i} issued {r} reads with window 4");
        }
        assert!(s.stats(CoreId(0)).stall_cycles > 0);
    }

    #[test]
    fn writes_do_not_block() {
        let mut s = subsystem("dedup"); // 30% writes
        let budget = vec![4usize; s.n_cores()];
        let mut writes = 0;
        for now in 0..50_000 {
            let mut out = Vec::new();
            s.tick(now, &budget, &mut out);
            writes += out
                .iter()
                .filter(|(_, o)| matches!(o, CpuOut::Write { .. }))
                .count();
        }
        assert!(writes > 0, "no writes from dedup");
        assert!(s.stats(CoreId(0)).writes > 0);
    }

    #[test]
    fn l1_filters_repeat_accesses() {
        let mut s = subsystem("blackscholes"); // 80% sequential, small WS
        run(&mut s, 200_000, 20);
        let st = s.stats(CoreId(0));
        assert!(
            st.l1_hits > st.reads,
            "sequential benchmark should mostly hit: {} hits vs {} reads",
            st.l1_hits,
            st.reads
        );
    }

    #[test]
    fn miss_completion_restores_window() {
        let mut s = subsystem("canneal");
        let budget = vec![4usize; s.n_cores()];
        let mut first: Option<(CoreId, LineAddr)> = None;
        for now in 0..10_000 {
            let mut out = Vec::new();
            s.tick(now, &budget, &mut out);
            if let Some(&(c, CpuOut::Read { line })) = out.first() {
                first = Some((c, line));
                break;
            }
        }
        let (c, line) = first.expect("a read");
        assert_eq!(s.outstanding(c), 1);
        s.deliver_data(c, line, 5_000);
        assert_eq!(s.outstanding(c), 0);
    }

    #[test]
    fn performance_is_one_without_traffic() {
        let s = subsystem("vips");
        assert_eq!(s.mean_performance(), 1.0);
    }
}
