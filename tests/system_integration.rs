//! Cross-crate integration tests: the assembled system behaves like the
//! paper's Section II description end to end.

use clognet_core::System;
use clognet_proto::{
    CoreId, L1Org, LayoutKind, Priority, Scheme, SystemConfig, Topology, TrafficClass,
    VirtualNetConfig,
};

fn run(cfg: SystemConfig, gpu: &str, cpu: &str, warm: u64, cycles: u64) -> clognet_core::Report {
    let mut sys = System::new(cfg, gpu, cpu);
    sys.run(warm);
    sys.reset_stats();
    sys.run(cycles);
    sys.report()
}

#[test]
fn baseline_makes_progress_on_all_table2_workloads() {
    for (gpu, cpu) in clognet_workloads::all_workloads() {
        let r = run(SystemConfig::default(), gpu, cpu, 1_000, 3_000);
        assert!(r.gpu_ipc > 0.0, "{gpu}+{cpu} GPU dead");
        assert!(r.cpu_performance > 0.0, "{gpu}+{cpu} CPU dead");
        assert!(r.gpu_rx_rate > 0.0, "{gpu}+{cpu} no replies delivered");
    }
}

#[test]
fn baseline_clogs_the_memory_nodes() {
    // The premise of the paper: many bandwidth-hungry cores overwhelm
    // the few memory nodes' reply links.
    let r = run(SystemConfig::default(), "2DCON", "canneal", 4_000, 10_000);
    assert!(
        r.mem_blocked_rate > 0.15,
        "no clogging: blocked {:.3}",
        r.mem_blocked_rate
    );
    assert!(
        r.mem_reply_link_util > 0.25,
        "reply links idle: {:.3}",
        r.mem_reply_link_util
    );
}

#[test]
fn delegated_replies_beats_baseline_on_high_locality_workloads() {
    for gpu in ["HS", "SC", "MM", "SRAD"] {
        let b = run(SystemConfig::default(), gpu, "ferret", 4_000, 10_000);
        let d = run(
            SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
            gpu,
            "ferret",
            4_000,
            10_000,
        );
        assert!(
            d.gpu_ipc > b.gpu_ipc * 1.05,
            "{gpu}: DR {:.2} vs baseline {:.2}",
            d.gpu_ipc,
            b.gpu_ipc
        );
        assert!(d.delegations > 0, "{gpu}: no delegations fired");
        assert!(
            d.breakdown.remote_hit > d.breakdown.remote_miss,
            "{gpu}: pointer mostly wrong"
        );
    }
}

#[test]
fn delegation_never_fires_in_baseline_or_rp() {
    for scheme in [Scheme::Baseline, Scheme::rp_default()] {
        let r = run(
            SystemConfig::default().with_scheme(scheme),
            "HS",
            "vips",
            1_000,
            4_000,
        );
        assert_eq!(r.delegations, 0, "{scheme:?}");
        assert_eq!(r.breakdown.remote_hit + r.breakdown.remote_miss, 0);
    }
}

#[test]
fn rp_probes_and_only_rp() {
    let rp = run(
        SystemConfig::default().with_scheme(Scheme::rp_default()),
        "HS",
        "vips",
        2_000,
        6_000,
    );
    assert!(rp.probes_sent > 0, "RP never probed");
    let dr = run(
        SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
        "HS",
        "vips",
        2_000,
        6_000,
    );
    assert_eq!(dr.probes_sent, 0, "DR must not probe");
}

#[test]
fn dr_shields_cpu_latency_from_gpu_speedup() {
    // DR speeds the GPU up by tens of percent, which by itself would
    // congest the network and hurt the CPU. The paper-level claim is
    // that delegation sheds reply traffic at the memory nodes, so CPU
    // network latency grows far slower than GPU throughput — and CPU
    // performance is not sacrificed (Fig. 13).
    let mut perf_ratios = Vec::new();
    for (gpu, cpu) in [
        ("2DCON", "canneal"),
        ("SRAD", "x264"),
        ("BT", "dedup"),
        ("HS", "ferret"),
    ] {
        let b = run(SystemConfig::default(), gpu, cpu, 6_000, 14_000);
        let d = run(
            SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
            gpu,
            cpu,
            6_000,
            14_000,
        );
        let net_ratio = d.cpu_net_latency / b.cpu_net_latency;
        let gpu_ratio = d.gpu_ipc / b.gpu_ipc;
        assert!(
            net_ratio < gpu_ratio,
            "{gpu}+{cpu}: CPU net latency grew ({net_ratio:.3}) as fast as \
             GPU throughput ({gpu_ratio:.3}) — delegation is not shedding replies"
        );
        perf_ratios.push(d.cpu_performance / b.cpu_performance);
    }
    let mean = perf_ratios.iter().sum::<f64>() / perf_ratios.len() as f64;
    assert!(
        mean > 0.95,
        "CPU performance sacrificed under DR: ratios {perf_ratios:?}"
    );
}

#[test]
fn all_layouts_and_topologies_run() {
    for layout in LayoutKind::ALL {
        let (req, rep) = SystemConfig::best_routing_for(layout);
        let mut cfg = SystemConfig::default().with_routing(req, rep);
        cfg.layout = layout;
        let r = run(cfg, "NN", "dedup", 500, 2_000);
        assert!(r.gpu_ipc > 0.0, "{layout:?}");
    }
    for topo in Topology::ALL {
        let mut cfg = SystemConfig::default();
        cfg.noc.topology = topo;
        if topo != Topology::Mesh {
            cfg = cfg.with_routing(
                clognet_proto::RoutingPolicy::DorXY,
                clognet_proto::RoutingPolicy::DorXY,
            );
        }
        let r = run(cfg, "NN", "dedup", 500, 2_000);
        assert!(r.gpu_ipc > 0.0, "{topo:?}");
    }
}

#[test]
fn virtual_networks_and_shared_l1_run_with_dr() {
    let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    cfg.noc.virtual_nets = Some(VirtualNetConfig {
        request_vcs: 2,
        reply_vcs: 2,
    });
    let r = run(cfg, "HS", "bodytrack", 1_000, 4_000);
    assert!(r.gpu_ipc > 0.0);

    for org in [L1Org::DcL1, L1Org::DynEB] {
        let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
        cfg.l1_org = org;
        let r = run(cfg, "SC", "ferret", 1_000, 4_000);
        assert!(r.gpu_ipc > 0.0, "{org:?}");
    }
}

#[test]
fn runs_are_deterministic() {
    let mk = || {
        run(
            SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
            "SRAD",
            "x264",
            1_000,
            4_000,
        )
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.gpu_ipc, b.gpu_ipc);
    assert_eq!(a.delegations, b.delegations);
    assert_eq!(a.flit_hops, b.flit_hops);
    assert_eq!(a.breakdown, b.breakdown);
}

#[test]
fn cpu_priority_holds_in_the_network() {
    let mut sys = System::new(SystemConfig::default(), "2DCON", "canneal");
    sys.run(12_000);
    let req = sys.nets().net(TrafficClass::Request).stats();
    let cpu_lat = req.mean_latency(TrafficClass::Request, Priority::Cpu);
    let gpu_lat = req.mean_latency(TrafficClass::Request, Priority::Gpu);
    assert!(cpu_lat > 0.0 && gpu_lat > 0.0);
    assert!(
        cpu_lat < gpu_lat,
        "CPU requests slower than GPU: {cpu_lat:.1} vs {gpu_lat:.1}"
    );
}

#[test]
fn gpu_stats_are_consistent() {
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    let mut sys = System::new(cfg, "LUD", "swaptions");
    sys.run(8_000);
    let mut retired = 0;
    for i in 0..sys.config().n_gpu {
        let s = sys.gpu().stats(CoreId(i as u16));
        assert!(s.retired >= s.mem_ops, "core {i} retired < mem ops");
        retired += s.retired;
    }
    assert_eq!(retired, sys.gpu().total_retired());
}
