//! Randomized tests over the full system and its substrates:
//! conservation, determinism, and configuration robustness under
//! randomized parameters.
//!
//! Seeded with `clognet-rng` so every run explores the same cases.

use clognet_core::System;
use clognet_noc::{ClassAssignment, NetParams, Network};
use clognet_proto::*;
use clognet_rng::{Rng, SeedableRng, SmallRng};

fn arb_scheme(rng: &mut SmallRng) -> Scheme {
    match rng.gen_range(0..3u32) {
        0 => Scheme::Baseline,
        1 => Scheme::DelegatedReplies,
        _ => Scheme::RealisticProbing {
            fanout: rng.gen_range(1..8usize),
        },
    }
}

fn arb_layout(rng: &mut SmallRng) -> LayoutKind {
    [
        LayoutKind::Baseline,
        LayoutKind::EdgeB,
        LayoutKind::ClusteredC,
        LayoutKind::DistributedD,
    ][rng.gen_range(0..4usize)]
}

/// Any (scheme, layout, workload, seed) combination runs without
/// panics, makes progress, and keeps in-flight packets bounded.
#[test]
fn random_configurations_are_live() {
    let mut rng = SmallRng::seed_from_u64(0x5C_0001);
    for _case in 0..12 {
        let scheme = arb_scheme(&mut rng);
        let layout = arb_layout(&mut rng);
        let gpu = clognet_workloads::gpu_benchmarks()[rng.gen_range(0..11usize)].name;
        let cpu = clognet_workloads::cpu_benchmarks()[rng.gen_range(0..9usize)].name;
        let seed = rng.gen_range(0..1_000u64);
        let (req, rep) = SystemConfig::best_routing_for(layout);
        let mut cfg = SystemConfig::default()
            .with_scheme(scheme)
            .with_routing(req, rep);
        cfg.layout = layout;
        cfg.seed = seed;
        let mut sys = System::new(cfg, gpu, cpu);
        sys.run(2_500);
        let r = sys.report();
        assert!(r.gpu_ipc > 0.0, "GPU made no progress");
        assert!(sys.nets().in_flight() < 5_000, "packet explosion");
    }
}

/// The network conserves packets under random traffic on every
/// topology: everything injected is eventually ejected exactly once.
#[test]
fn network_conserves_packets() {
    let mut rng = SmallRng::seed_from_u64(0x5C_0002);
    for _case in 0..12 {
        let topology = Topology::ALL[rng.gen_range(0..4usize)];
        let n_sends = rng.gen_range(1..60usize);
        let sends: Vec<(u16, u16)> = (0..n_sends)
            .map(|_| (rng.gen_range(0..64u16), rng.gen_range(0..64u16)))
            .collect();
        let reply_class = rng.gen_bool(0.5);
        let class = if reply_class {
            TrafficClass::Reply
        } else {
            TrafficClass::Request
        };
        let kind = if reply_class {
            MsgKind::ReadReply
        } else {
            MsgKind::ReadReq
        };
        let mut net = Network::new(NetParams {
            topology,
            width: 8,
            height: 8,
            classes: ClassAssignment::Single(class, 2),
            vc_buf_flits: 4,
            pipeline: 4,
            routing_request: RoutingPolicy::DorYX,
            routing_reply: RoutingPolicy::DorXY,
            eject_buf_flits: 36,
            sa_iterations: 1,
        });
        let mut expected = vec![0usize; 64];
        let mut queued: Vec<Packet> = sends
            .iter()
            .filter(|(s, d)| s != d)
            .enumerate()
            .map(|(i, &(s, d))| {
                expected[d as usize] += 1;
                Packet::new(
                    PacketId(i as u64),
                    NodeId(s),
                    NodeId(d),
                    kind,
                    Priority::Gpu,
                    Addr::new(i as u64 * 128),
                    128,
                    16,
                    0,
                )
            })
            .collect();
        let mut received = vec![0usize; 64];
        for _ in 0..6_000 {
            if let Some(p) = queued.pop() {
                if let Err(back) = net.try_inject(p) {
                    queued.push(back);
                }
            }
            net.tick();
            for (d, r) in received.iter_mut().enumerate() {
                *r += net.take_ejected(NodeId(d as u16), usize::MAX).len();
            }
            if queued.is_empty() && net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(
            received, expected,
            "{topology:?} lost or duplicated packets"
        );
        assert_eq!(net.in_flight(), 0);
    }
}

/// Same seed, same result — the simulator is deterministic under every
/// scheme.
#[test]
fn determinism_across_schemes() {
    let mut rng = SmallRng::seed_from_u64(0x5C_0003);
    for _case in 0..6 {
        let scheme = arb_scheme(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let mk = || {
            let mut cfg = SystemConfig::default().with_scheme(scheme);
            cfg.seed = seed;
            let mut sys = System::new(cfg, "NN", "swaptions");
            sys.run(2_000);
            let r = sys.report();
            (
                r.gpu_ipc.to_bits(),
                r.flit_hops,
                r.delegations,
                r.probes_sent,
            )
        };
        assert_eq!(mk(), mk());
    }
}

/// Mesh sizes and node mixes tile correctly and run.
#[test]
fn node_mix_variants_run() {
    for gpu_extra in 0..3usize {
        for n_mem in [4usize, 8, 16] {
            let n_cpu = 8 + gpu_extra * 8;
            let n_gpu = 64 - n_mem - n_cpu;
            let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
            cfg.n_gpu = n_gpu;
            cfg.n_cpu = n_cpu;
            cfg.n_mem = n_mem;
            let mut sys = System::new(cfg, "HS", "ferret");
            sys.run(2_000);
            assert!(sys.report().gpu_ipc > 0.0);
        }
    }
}
