//! Property-based tests (proptest) over the full system and its
//! substrates: conservation, determinism, and configuration robustness
//! under randomized parameters.

use clognet_core::System;
use clognet_noc::{ClassAssignment, NetParams, Network};
use clognet_proto::*;
use proptest::prelude::*;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Baseline),
        Just(Scheme::DelegatedReplies),
        (1usize..8).prop_map(|fanout| Scheme::RealisticProbing { fanout }),
    ]
}

fn arb_layout() -> impl Strategy<Value = LayoutKind> {
    prop_oneof![
        Just(LayoutKind::Baseline),
        Just(LayoutKind::EdgeB),
        Just(LayoutKind::ClusteredC),
        Just(LayoutKind::DistributedD),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (scheme, layout, workload, seed) combination runs without
    /// panics, makes progress, and keeps in-flight packets bounded.
    #[test]
    fn random_configurations_are_live(
        scheme in arb_scheme(),
        layout in arb_layout(),
        bench_ix in 0usize..11,
        cpu_ix in 0usize..9,
        seed in 0u64..1_000,
    ) {
        let gpu = clognet_workloads::gpu_benchmarks()[bench_ix].name;
        let cpu = clognet_workloads::cpu_benchmarks()[cpu_ix].name;
        let (req, rep) = SystemConfig::best_routing_for(layout);
        let mut cfg = SystemConfig::default()
            .with_scheme(scheme)
            .with_routing(req, rep);
        cfg.layout = layout;
        cfg.seed = seed;
        let mut sys = System::new(cfg, gpu, cpu);
        sys.run(2_500);
        let r = sys.report();
        prop_assert!(r.gpu_ipc > 0.0, "GPU made no progress");
        prop_assert!(sys.nets().in_flight() < 5_000, "packet explosion");
    }

    /// The network conserves packets under random traffic on every
    /// topology: everything injected is eventually ejected exactly once.
    #[test]
    fn network_conserves_packets(
        topo_ix in 0usize..4,
        sends in proptest::collection::vec((0u16..64, 0u16..64), 1..60),
        reply_class in any::<bool>(),
    ) {
        let topology = Topology::ALL[topo_ix];
        let class = if reply_class { TrafficClass::Reply } else { TrafficClass::Request };
        let kind = if reply_class { MsgKind::ReadReply } else { MsgKind::ReadReq };
        let mut net = Network::new(NetParams {
            topology,
            width: 8,
            height: 8,
            classes: ClassAssignment::Single(class, 2),
            vc_buf_flits: 4,
            pipeline: 4,
            routing_request: RoutingPolicy::DorYX,
            routing_reply: RoutingPolicy::DorXY,
            eject_buf_flits: 36,
            sa_iterations: 1,
        });
        let mut expected = vec![0usize; 64];
        let mut queued: Vec<Packet> = sends
            .iter()
            .filter(|(s, d)| s != d)
            .enumerate()
            .map(|(i, &(s, d))| {
                expected[d as usize] += 1;
                Packet::new(
                    PacketId(i as u64),
                    NodeId(s),
                    NodeId(d),
                    kind,
                    Priority::Gpu,
                    Addr::new(i as u64 * 128),
                    128,
                    16,
                    0,
                )
            })
            .collect();
        let mut received = vec![0usize; 64];
        for _ in 0..6_000 {
            if let Some(p) = queued.pop() {
                if let Err(back) = net.try_inject(p) {
                    queued.push(back);
                }
            }
            net.tick();
            for (d, r) in received.iter_mut().enumerate() {
                *r += net.take_ejected(NodeId(d as u16), usize::MAX).len();
            }
            if queued.is_empty() && net.in_flight() == 0 {
                break;
            }
        }
        prop_assert_eq!(received, expected, "{:?} lost or duplicated packets", topology);
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Same seed, same result — the simulator is deterministic under
    /// every scheme.
    #[test]
    fn determinism_across_schemes(scheme in arb_scheme(), seed in 0u64..50) {
        let mk = || {
            let mut cfg = SystemConfig::default().with_scheme(scheme);
            cfg.seed = seed;
            let mut sys = System::new(cfg, "NN", "swaptions");
            sys.run(2_000);
            let r = sys.report();
            (r.gpu_ipc.to_bits(), r.flit_hops, r.delegations, r.probes_sent)
        };
        prop_assert_eq!(mk(), mk());
    }

    /// Mesh sizes and node mixes tile correctly and run.
    #[test]
    fn node_mix_variants_run(
        gpu_extra in 0usize..3,
        mem_choice in 0usize..3,
    ) {
        let n_mem = [4usize, 8, 16][mem_choice];
        let n_cpu = 8 + gpu_extra * 8;
        let n_gpu = 64 - n_mem - n_cpu;
        let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
        cfg.n_gpu = n_gpu;
        cfg.n_cpu = n_cpu;
        cfg.n_mem = n_mem;
        let mut sys = System::new(cfg, "HS", "ferret");
        sys.run(2_000);
        prop_assert!(sys.report().gpu_ipc > 0.0);
    }
}
