//! End-to-end properties of the adaptive control loop: a controller
//! that never acts must be byte-invisible across every scheme and
//! engine mode, a controller that does act must be replayable through
//! the snapshot engine (decision log included), and the hysteresis
//! policy must actually fire on the paper's clog-heavy workload.

use clognet_core::{System, TickEngine};
use clognet_proto::{ControlConfig, ControlPolicyKind, Scheme, SystemConfig};

/// A hysteresis config whose thresholds sit past the physically
/// possible range: blocked fractions cap at 1000‰ and hot streaks
/// never reach `u64::MAX`, so the policy holds at the base rung
/// forever.
fn never_firing() -> ControlConfig {
    ControlConfig {
        policy: ControlPolicyKind::Hysteresis,
        enter_blocked_pm: 1_001,
        enter_episode: u64::MAX,
        exit_episode: u64::MAX,
        ..ControlConfig::default()
    }
}

fn report_of(cfg: SystemConfig, ff: bool, shards: usize, warm: u64, cycles: u64) -> (System, u64) {
    let mut sys = System::new(cfg, "NN", "canneal");
    sys.set_fast_forward(ff);
    if shards > 1 {
        sys.set_tick_engine(TickEngine::Sharded(shards)).unwrap();
    }
    sys.run(warm);
    sys.reset_stats();
    sys.run(cycles);
    (sys, warm + cycles)
}

/// A controller that never switches schemes must leave the simulation
/// byte-identical to an uncontrolled run — under every scheme, with
/// fast-forward on and off, sequential and sharded. This is the
/// license to leave `--control noop` on in production telemetry runs.
#[test]
fn inert_controllers_are_byte_invisible() {
    for scheme in [
        Scheme::Baseline,
        Scheme::rp_default(),
        Scheme::DelegatedReplies,
    ] {
        for (ff, shards) in [(true, 1), (false, 1), (true, 2)] {
            let cfg = SystemConfig::default().with_scheme(scheme);
            let (plain, _) = report_of(cfg.clone(), ff, shards, 300, 900);

            let mut noop = cfg.clone();
            noop.control = Some(ControlConfig::noop());
            let (controlled, _) = report_of(noop, ff, shards, 300, 900);
            assert_eq!(
                plain.report(),
                controlled.report(),
                "noop policy diverged: {scheme:?} ff={ff} shards={shards}"
            );
            // The controller still ran: every boundary is on the log.
            let log = controlled.decision_log().expect("controller attached");
            assert!(!log.is_empty(), "no decisions logged");
            assert_eq!(log.escalations() + log.de_escalations(), 0);

            let mut held = cfg;
            held.control = Some(never_firing());
            let (controlled, _) = report_of(held, ff, shards, 300, 900);
            assert_eq!(
                plain.report(),
                controlled.report(),
                "never-firing hysteresis diverged: {scheme:?} ff={ff} shards={shards}"
            );
            let log = controlled.decision_log().expect("controller attached");
            assert_eq!(log.escalations() + log.de_escalations(), 0);
        }
    }
}

/// The paper's clog-heavy pairing under a starved injection buffer
/// must push the default hysteresis ladder off the baseline rung —
/// the CLI acceptance run (`clognet run --control hysteresis`) in
/// test form.
#[test]
fn hysteresis_escalates_on_a_clogged_workload() {
    let mut cfg = SystemConfig::default();
    cfg.noc.mem_inj_buf_pkts = 4;
    cfg.control = Some(ControlConfig::default());
    let (sys, _) = report_of(cfg, true, 1, 4_000, 10_000);
    let log = sys.decision_log().expect("controller attached");
    assert!(
        log.escalations() >= 1,
        "expected at least one escalation, log: {:?}",
        log.entries()
    );
    // Escalations walk the ladder upward one step at a time from the
    // base rung, and the recorded observations justify each one.
    for d in log.entries() {
        if d.to_level > d.from_level {
            assert_eq!(d.to_level - d.from_level, 1, "{d:?}");
        }
    }
    assert!(sys.control_level().expect("controller attached") > 0 || log.de_escalations() > 0);
}

/// A controlled run must fork through the snapshot engine exactly like
/// an uncontrolled one: restore mid-escalation, run both sides to the
/// same horizon, and demand identical reports, identical decision
/// logs (the log rides the CLOGSNAP body), and identical bytes.
#[test]
fn controlled_runs_snapshot_and_restore_mid_escalation() {
    let mut cfg = SystemConfig::default();
    cfg.noc.mem_inj_buf_pkts = 4;
    cfg.control = Some(ControlConfig {
        interval: 250,
        enter_blocked_pm: 100,
        exit_blocked_pm: 0,
        ..ControlConfig::default()
    });
    let mut straight = System::new(cfg.clone(), "NN", "canneal");
    let mut warm = System::new(cfg, "NN", "canneal");
    straight.run(5_000);
    warm.run(5_000);
    // The point of the test: the fork happens while the controller is
    // already off the base rung.
    assert!(
        warm.control_level().expect("controller attached") > 0,
        "escalate before the snapshot, log: {:?}",
        warm.decision_log().expect("controller attached").entries()
    );
    let snap =
        clognet_core::Snapshot::from_bytes(warm.snapshot().into_bytes()).expect("snapshot parses");
    let mut forked = System::restore(&snap).expect("snapshot restores");
    assert_eq!(
        straight.decision_log(),
        forked.decision_log(),
        "decision log did not round-trip through CLOGSNAP"
    );
    straight.run(5_000);
    forked.run(5_000);
    assert_eq!(straight.report(), forked.report(), "reports diverged");
    assert_eq!(
        straight.decision_log(),
        forked.decision_log(),
        "decision logs diverged after the fork"
    );
    assert_eq!(
        straight.snapshot().as_bytes(),
        forked.snapshot().as_bytes(),
        "snapshot bytes diverged: restored controller state is not byte-stable"
    );
}
