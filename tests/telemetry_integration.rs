//! End-to-end telemetry tests: the observability subsystem must see the
//! paper's clogging story (baseline NN + canneal clogs; Delegated
//! Replies relieves it) and its exports must be bit-reproducible.

use clognet_core::{System, TelemetryConfig};
use clognet_proto::{Scheme, SystemConfig};

fn instrumented(scheme: Scheme, seed: u64) -> System {
    let mut cfg = SystemConfig::default().with_scheme(scheme);
    cfg.seed = seed;
    let mut sys = System::new(cfg, "NN", "canneal");
    sys.enable_telemetry(TelemetryConfig::default());
    sys
}

#[test]
fn baseline_nn_canneal_shows_clog_episodes() {
    let mut sys = instrumented(Scheme::Baseline, 7);
    sys.run(20_000);
    sys.finish_telemetry();
    let t = sys.telemetry().expect("telemetry enabled");
    let eps = t.session.episodes.episodes();
    assert!(
        !eps.is_empty(),
        "baseline NN+canneal must clog at least once"
    );
    // Episodes are well-formed: positive duration, within the run,
    // non-zero peak depth (a blocked node holds committed work).
    for e in eps {
        assert!(e.end > e.start, "episode {e:?}");
        assert!(e.end <= 20_000, "episode {e:?}");
        assert!(e.peak_depth > 0, "episode {e:?}");
        assert_eq!(e.flits_shed, 0, "baseline never delegates: {e:?}");
    }
    // The sampler saw the same story: some epoch has a blocked node.
    let s = t.sampler();
    let blocked = s.find("blocked_nodes").expect("series registered");
    assert!(s.values(blocked).iter().any(|&v| v > 0.0));
}

#[test]
fn dr_reduces_blocked_epochs_vs_baseline() {
    // A node-epoch counts as blocked when that memory node spent more
    // than half the epoch with its injection buffer full — the severe
    // clogging of Fig. 5b, which delegation is built to relieve.
    // Deterministic regression pin: the stock configuration (default
    // seed) reproduces the paper's relief story — under other seeds the
    // faster DR-side GPU can add enough load to blur raw blocked time.
    let blocked_epochs = |scheme: Scheme| -> (usize, u64) {
        let mut sys = System::new(SystemConfig::default().with_scheme(scheme), "NN", "canneal");
        sys.enable_telemetry(TelemetryConfig::default());
        sys.run(20_000);
        sys.finish_telemetry();
        let t = sys.telemetry().expect("telemetry enabled");
        let s = t.sampler();
        let mut severe = 0usize;
        for i in 0.. {
            let Some(id) = s.find(&format!("mem{i}_blocked_frac")) else {
                break;
            };
            severe += s.values(id).iter().filter(|&&v| v > 0.5).count();
        }
        (severe, t.session.episodes.total_blocked_cycles())
    };
    let (base_epochs, base_cycles) = blocked_epochs(Scheme::Baseline);
    let (dr_epochs, dr_cycles) = blocked_epochs(Scheme::DelegatedReplies);
    assert!(
        dr_epochs < base_epochs,
        "DR should show fewer severely-blocked node-epochs: {dr_epochs} vs {base_epochs}"
    );
    assert!(
        dr_cycles < base_cycles,
        "DR should spend fewer cycles blocked: {dr_cycles} vs {base_cycles}"
    );
}

#[test]
fn dr_episodes_record_shed_flits() {
    let mut sys = instrumented(Scheme::DelegatedReplies, 7);
    sys.run(20_000);
    sys.finish_telemetry();
    let t = sys.telemetry().expect("telemetry enabled");
    let shed: u64 = t
        .session
        .episodes
        .episodes()
        .iter()
        .map(|e| e.flits_shed)
        .sum();
    assert!(shed > 0, "DR under clogging should shed reply flits");
}

#[test]
fn same_seed_exports_are_byte_identical() {
    let export = || {
        let mut sys = instrumented(Scheme::DelegatedReplies, 42);
        sys.run(12_000);
        (
            sys.export_metrics_json().expect("telemetry enabled"),
            sys.export_series_csv().expect("telemetry enabled"),
        )
    };
    let (json_a, csv_a) = export();
    let (json_b, csv_b) = export();
    assert_eq!(json_a, json_b, "JSON export must be deterministic");
    assert_eq!(csv_a, csv_b, "CSV export must be deterministic");
    // And it is well-formed enough to contain the headline sections.
    for key in ["\"meta\"", "\"registry\"", "\"sampler\"", "\"episodes\""] {
        assert!(json_a.contains(key), "missing {key}");
    }
    assert!(csv_a.starts_with("epoch,"));
}

#[test]
fn disabled_telemetry_exports_nothing_and_matches_enabled_report() {
    // Telemetry must be observation-only: enabling it cannot change
    // simulation results.
    let run = |telemetry: bool| {
        let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
        cfg.seed = 3;
        let mut sys = System::new(cfg, "NN", "canneal");
        if telemetry {
            sys.enable_telemetry(TelemetryConfig::default());
        }
        sys.run(8_000);
        let r = sys.report();
        (r.gpu_ipc, r.cpu_performance, r.delegations, r.flit_hops)
    };
    assert!(instrumented(Scheme::Baseline, 0)
        .export_metrics_json()
        .is_some());
    let mut plain = System::new(SystemConfig::default(), "NN", "canneal");
    plain.run(100);
    assert!(plain.export_metrics_json().is_none());
    assert!(plain.export_series_csv().is_none());
    assert_eq!(run(false), run(true), "telemetry perturbed the simulation");
}
