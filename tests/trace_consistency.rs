//! The event trace must agree with the aggregate statistics: delegation
//! events equal the delegation counter, remote hits/misses match the
//! breakdown, and blocking episodes reconstruct the blocked rate.

use clognet_core::{Event, System};
use clognet_proto::{Scheme, SystemConfig};

#[test]
fn trace_counts_match_report() {
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    let mut sys = System::new(cfg, "HS", "ferret");
    sys.run(4_000);
    sys.reset_stats();
    sys.enable_trace(1_000_000);
    sys.run(8_000);
    let r = sys.report();
    let trace = sys.trace();
    let count = |k: &str| trace.of_kind(k).count() as u64;
    assert_eq!(count("delegate"), r.delegations, "delegation events");
    // Remote hits are traced when the CoreReply leaves the server;
    // the stats count FRQ service, so events trail the stats by the
    // replies still queued core-side. Each of the 40 GPU cores can hold
    // a 16-entry reply outbox plus FRQ work, so allow that much slack.
    let slack = 40 * 16;
    let hits = count("remote-hit");
    assert!(
        hits <= r.breakdown.remote_hit && hits + slack >= r.breakdown.remote_hit,
        "remote hits: {} events vs {} stat",
        hits,
        r.breakdown.remote_hit
    );
    let misses = count("remote-miss");
    assert!(
        misses <= r.breakdown.remote_miss && misses + slack >= r.breakdown.remote_miss,
        "remote misses: {} events vs {} stat",
        misses,
        r.breakdown.remote_miss
    );
    // Blocking episodes close or stay open; counts differ by at most the
    // number of memory nodes.
    let enters = count("blocked");
    let exits = count("unblocked");
    assert!(enters >= exits && enters - exits <= 8);
}

#[test]
fn blocked_durations_reconstruct_rate() {
    let cfg = SystemConfig::default();
    let mut sys = System::new(cfg, "2DCON", "canneal");
    sys.run(4_000);
    sys.reset_stats();
    sys.enable_trace(1_000_000);
    sys.run(8_000);
    let r = sys.report();
    let mut blocked_cycles = 0u64;
    for t in sys.trace().events() {
        if let Event::BlockedExit { for_cycles, .. } = t.event {
            blocked_cycles += for_cycles;
        }
    }
    // Closed episodes undercount (open episodes at the end are missing),
    // so the reconstruction is a lower bound on the reported rate.
    let reconstructed = blocked_cycles as f64 / (8.0 * r.cycles as f64);
    assert!(
        reconstructed <= r.mem_blocked_rate + 0.02,
        "reconstructed {reconstructed:.3} vs reported {:.3}",
        r.mem_blocked_rate
    );
    assert!(r.mem_blocked_rate > 0.05, "no clogging to reconstruct");
    assert!(reconstructed > 0.0, "no blocking episodes traced");
}

#[test]
fn flush_events_appear_at_kernel_boundaries() {
    let mut cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    cfg.gpu.flush_interval = Some(2_000);
    let mut sys = System::new(cfg, "NN", "vips");
    sys.enable_trace(1_000_000);
    sys.run(9_000);
    let flushes = sys.trace().of_kind("flush").count();
    assert!(flushes >= 40, "expected many flushes, saw {flushes}");
}
