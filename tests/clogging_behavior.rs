//! Behavioral tests for the clogging mechanics the paper builds on:
//! back-pressure, blocking, the delegation trigger, and the protocol's
//! corner cases at system scale.

use clognet_core::System;
use clognet_proto::{Scheme, SystemConfig};

#[test]
fn delegation_reduces_blocking_per_unit_of_work() {
    // Figure 4's point: delegating frees the injection buffer. In steady
    // state DR also *raises throughput*, which feeds more requests back
    // into the memory nodes — so the robust form of the claim is
    // blocking per retired instruction, not the raw blocked rate.
    let measure = |scheme| {
        let mut sys = System::new(SystemConfig::default().with_scheme(scheme), "SC", "ferret");
        sys.run(4_000);
        sys.reset_stats();
        sys.run(10_000);
        let r = sys.report();
        (r.mem_blocked_rate, r.gpu_ipc)
    };
    let (blocked_b, ipc_b) = measure(Scheme::Baseline);
    let (blocked_d, ipc_d) = measure(Scheme::DelegatedReplies);
    assert!(ipc_d > ipc_b, "DR must raise throughput");
    let per_work_b = blocked_b / ipc_b;
    let per_work_d = blocked_d / ipc_d;
    assert!(
        per_work_d < per_work_b,
        "DR blocking/IPC {per_work_d:.4} >= baseline {per_work_b:.4}"
    );
}

#[test]
fn delegation_moves_traffic_off_memory_reply_links() {
    let measure = |scheme| {
        let mut sys = System::new(SystemConfig::default().with_scheme(scheme), "HS", "x264");
        sys.run(4_000);
        sys.reset_stats();
        sys.run(10_000);
        let r = sys.report();
        (r.gpu_rx_rate, r.mem_reply_link_util, r.delegations)
    };
    let (rx_b, _util_b, del_b) = measure(Scheme::Baseline);
    let (rx_d, _util_d, del_d) = measure(Scheme::DelegatedReplies);
    assert_eq!(del_b, 0);
    assert!(del_d > 100, "delegation barely fired: {del_d}");
    // The received data rate must rise: remote cores add reply bandwidth
    // beyond what the memory-node links can supply.
    assert!(
        rx_d > rx_b * 1.05,
        "rx rate DR {rx_d:.3} vs baseline {rx_b:.3}"
    );
}

#[test]
fn smaller_injection_buffers_mean_more_blocking() {
    let blocked = |pkts| {
        let mut cfg = SystemConfig::default();
        cfg.noc.mem_inj_buf_pkts = pkts;
        let mut sys = System::new(cfg, "2DCON", "blackscholes");
        sys.run(3_000);
        sys.reset_stats();
        sys.run(8_000);
        sys.report().mem_blocked_rate
    };
    let small = blocked(4);
    let large = blocked(64);
    assert!(
        small > large,
        "blocking should shrink with buffer size: {small:.3} vs {large:.3}"
    );
}

#[test]
fn dnf_requests_are_answered_not_redelegated() {
    let mut sys = System::new(
        SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
        "3DCON",
        "bodytrack",
    );
    sys.run(15_000);
    let r = sys.report();
    // 3DCON's big tiles produce remote misses; every one must round-trip
    // through the DNF path and still complete (IPC > 0 with remote
    // misses present proves no livelock).
    assert!(
        r.breakdown.remote_miss > 0,
        "3DCON should produce remote misses"
    );
    let dnf: u64 = sys.mems().iter().map(|m| m.stats.dnf_requests).sum();
    assert!(dnf > 0, "DNF requests never reached the LLC");
    assert!(r.gpu_ipc > 0.0);
}

#[test]
fn pointer_accuracy_is_high_on_stencils() {
    // The paper's heuristic quality claim (74.5% average hit rate).
    let mut sys = System::new(
        SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
        "HS",
        "ferret",
    );
    sys.run(4_000);
    sys.reset_stats();
    sys.run(10_000);
    let r = sys.report();
    assert!(
        r.breakdown.remote_hit_rate() > 0.6,
        "pointer accuracy {:.3}",
        r.breakdown.remote_hit_rate()
    );
}

#[test]
fn no_packets_leak_after_drain() {
    // Stop generating new work (by just ticking the networks via the
    // system with cores idle once streams stall on MSHRs) and verify
    // conservation: nothing in flight grows without bound.
    let mut sys = System::new(
        SystemConfig::default().with_scheme(Scheme::DelegatedReplies),
        "MM",
        "vips",
    );
    sys.run(10_000);
    let flight_a = sys.nets().in_flight();
    sys.run(10_000);
    let flight_b = sys.nets().in_flight();
    // In-flight population is bounded by MSHRs + buffers, far below the
    // packet count issued; equality isn't expected, explosion is the bug.
    assert!(
        flight_a < 4_000 && flight_b < 4_000,
        "{flight_a} {flight_b}"
    );
}

#[test]
fn double_bandwidth_relieves_clogging() {
    // The Figure-5 control: doubling channel width must cut blocking and
    // raise GPU throughput (that is why it is the expensive alternative).
    let run = |bytes| {
        let mut cfg = SystemConfig::default();
        cfg.noc.channel_bytes = bytes;
        let mut sys = System::new(cfg, "2DCON", "canneal");
        sys.run(4_000);
        sys.reset_stats();
        sys.run(10_000);
        let r = sys.report();
        (r.gpu_ipc, r.mem_blocked_rate)
    };
    let (ipc_1x, blocked_1x) = run(16);
    let (ipc_2x, blocked_2x) = run(32);
    assert!(ipc_2x > ipc_1x * 1.1, "2x BW: {ipc_2x:.2} vs {ipc_1x:.2}");
    assert!(
        blocked_2x < blocked_1x,
        "{blocked_2x:.3} vs {blocked_1x:.3}"
    );
}
