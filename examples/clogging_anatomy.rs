//! The anatomy of network clogging (Section II of the paper).
//!
//! Runs the baseline system and dissects where the pressure builds:
//! per-memory-node blocking rates, the utilization of each memory node's
//! reply-network links, request-vs-reply network latencies, and what
//! happens to CPU packets caught in the jam.
//!
//! ```sh
//! cargo run --release --example clogging_anatomy
//! ```

use clognet_core::System;
use clognet_proto::{Priority, SystemConfig, TrafficClass};

fn main() {
    let cfg = SystemConfig::default(); // baseline scheme
    let mut sys = System::new(cfg, "2DCON", "canneal");
    sys.run(5_000);
    sys.reset_stats();
    sys.run(20_000);
    let r = sys.report();

    println!("=== network clogging anatomy: 2DCON + canneal, baseline ===\n");
    println!("chip layout (C=CPU, M=memory node, G=GPU):");
    println!("{}", sys.layout().ascii());

    println!("per-memory-node state over {} measured cycles:", r.cycles);
    println!(
        "{:>4} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "node", "requests", "llc-hit%", "blocked%", "injected", "replyUtil"
    );
    let reply_net = sys.nets().net(TrafficClass::Reply);
    let topo = reply_net.topo();
    for m in sys.mems() {
        let s = m.stats;
        let (router, local) = topo.attach_of(m.node);
        let util = (0..topo.port_count(router))
            .filter(|&p| p != local)
            .map(|p| reply_net.stats().link_utilization(router, p))
            .fold(0.0f64, f64::max);
        println!(
            "{:>4} {:>10} {:>8.1}% {:>8.1}% {:>9} {:>9.1}%",
            m.id.to_string(),
            s.requests,
            s.llc_hits as f64 / (s.llc_hits + s.llc_misses).max(1) as f64 * 100.0,
            s.blocked_cycles as f64 / r.cycles as f64 * 100.0,
            s.injected_replies,
            util * 100.0
        );
    }

    let req = sys.nets().net(TrafficClass::Request).stats();
    let rep = sys.nets().net(TrafficClass::Reply).stats();
    println!("\nnetwork asymmetry (the paper's key observation):");
    println!(
        "  request net: {:>8} packets injected, GPU latency {:>7.1} cycles",
        req.injected_pkts[0],
        req.mean_latency(TrafficClass::Request, Priority::Gpu)
    );
    println!(
        "  reply net  : {:>8} packets injected, GPU latency {:>7.1} cycles",
        rep.injected_pkts[1],
        rep.mean_latency(TrafficClass::Reply, Priority::Gpu)
    );
    println!(
        "  a read request is 1 flit; a reply is 9 — the reply links of the {} memory",
        sys.mems().len()
    );
    println!("  nodes are the bottleneck, and the back-pressure (blocked% above) denies");
    println!("  even prioritized CPU requests entry to the memory nodes:");
    println!(
        "  CPU network latency {:.1} cycles, CPU performance {:.3} (1.0 = unloaded)",
        r.cpu_net_latency, r.cpu_performance
    );
    println!(
        "\noracle inter-core locality: {:.1}% of L1 misses were resident in a remote L1",
        r.oracle_locality * 100.0
    );
    println!("=> the data to deflect the clog is already on-chip; Delegated Replies uses it.");
}
