//! Quickstart: build the Table-I system, run one heterogeneous workload
//! under the baseline and under Delegated Replies, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clognet_core::System;
use clognet_proto::{Scheme, SystemConfig};

fn main() {
    println!("clognet quickstart: HS (GPU) + bodytrack (CPU) on the 8x8 baseline chip\n");
    let mut results = Vec::new();
    for scheme in [Scheme::Baseline, Scheme::DelegatedReplies] {
        // Table-I defaults; only the scheme changes.
        let cfg = SystemConfig::default().with_scheme(scheme);
        let mut sys = System::new(cfg, "HS", "bodytrack");
        // Warm caches and queues, then measure a clean window.
        sys.run(10_000);
        sys.reset_stats();
        sys.run(25_000);
        let r = sys.report();
        println!("[{}]", scheme.label());
        println!("  GPU IPC                 : {:.2}", r.gpu_ipc);
        println!(
            "  CPU performance         : {:.3} (1.0 = unloaded)",
            r.cpu_performance
        );
        println!(
            "  CPU network latency     : {:.1} cycles",
            r.cpu_net_latency
        );
        println!(
            "  GPU received data rate  : {:.3} flits/cycle/core",
            r.gpu_rx_rate
        );
        println!(
            "  memory nodes blocked    : {:.1}% of cycles",
            r.mem_blocked_rate * 100.0
        );
        println!("  replies delegated       : {}", r.delegations);
        println!();
        results.push(r);
    }
    let speedup = results[1].gpu_ipc / results[0].gpu_ipc;
    println!(
        "Delegated Replies GPU speedup: {:.1}%  (paper: +25.8% avg across benchmarks)",
        (speedup - 1.0) * 100.0
    );
    println!(
        "CPU network latency change   : {:+.1}%",
        (results[1].cpu_net_latency / results[0].cpu_net_latency - 1.0) * 100.0
    );
}
