//! A guided tour of the Delegated Replies mechanism (Sections II & IV).
//!
//! Walks the protocol at API level — core pointers, delegatable replies,
//! the DNF bit — then runs the full system and breaks every L1 miss into
//! the three Figure-14 outcomes: LLC-direct, remote hit (including
//! delayed hits), and remote miss.
//!
//! ```sh
//! cargo run --release --example delegation_tour
//! ```

use clognet_cache::{LlcAccess, LlcSlice};
use clognet_core::System;
use clognet_proto::{CoreId, LineAddr, LlcConfig, Scheme, SystemConfig};

fn main() {
    println!("=== part 1: the core pointer, in isolation ===\n");
    let mut llc = LlcSlice::new(LlcConfig::default().slice);
    let line = LineAddr(0x42);
    llc.fill(line, Some(CoreId(7)));
    println!("fill line {line} pointing at core 7 (the core that fetched it)");
    match llc.read_gpu(line, CoreId(12)) {
        LlcAccess::Hit(Some(prev)) => println!(
            "core 12 reads -> LLC hit; previous accessor was {prev}: the reply is\n  \
             DELEGATABLE to {prev} (it likely still caches the line), and the\n  \
             pointer now names core 12"
        ),
        other => println!("unexpected: {other:?}"),
    }
    match llc.read_gpu(line, CoreId(12)) {
        LlcAccess::Hit(Some(CoreId(12))) => println!(
            "core 12 reads again -> pointer names itself: NOT delegatable\n  \
             (it must have evicted the line; the LLC answers directly)"
        ),
        other => println!("unexpected: {other:?}"),
    }
    llc.write(line);
    println!(
        "a write invalidates the pointer (coherence, Section IV): {:?}",
        llc.pointer(line)
    );

    println!("\n=== part 2: the mechanism at full-system scale ===\n");
    let cfg = SystemConfig::default().with_scheme(Scheme::DelegatedReplies);
    let mut sys = System::new(cfg, "HS", "ferret");
    sys.run(6_000);
    sys.reset_stats();
    sys.run(20_000);
    let r = sys.report();
    let b = r.breakdown;
    let t = b.total().max(1) as f64;
    println!("HS + ferret, {} measured cycles:", r.cycles);
    println!("  L1 miss outcomes (Figure 14):");
    println!(
        "    LLC direct : {:>6}  ({:.1}%)",
        b.llc_direct,
        b.llc_direct as f64 / t * 100.0
    );
    println!(
        "    remote hit : {:>6}  ({:.1}%)  <- delegated, data served core-to-core",
        b.remote_hit,
        b.remote_hit as f64 / t * 100.0
    );
    println!(
        "    remote miss: {:>6}  ({:.1}%)  <- delegated, bounced back with the DNF bit",
        b.remote_miss,
        b.remote_miss as f64 / t * 100.0
    );
    println!(
        "  pointer accuracy: {:.1}% of delegations found the line remotely (paper: 74.4%)",
        b.remote_hit_rate() * 100.0
    );
    println!(
        "  FRQ same-line arrivals: {:.1}% (paper: 4.8% — why the FRQ does not merge)",
        r.frq_same_line_fraction * 100.0
    );
    println!(
        "  delegations only fire when reply injection is blocked: {} delegations,\n  \
         memory nodes blocked {:.1}% of cycles",
        r.delegations,
        r.mem_blocked_rate * 100.0
    );
    println!(
        "  GPU IPC {:.2}, received data rate {:.3} flits/cycle/core",
        r.gpu_ipc, r.gpu_rx_rate
    );
}
