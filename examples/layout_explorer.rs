//! Explore the four Figure-1 chip layouts and their routing policies
//! (Section V): print each grid, then measure how layout and
//! dimension-order choices trade CPU performance against GPU
//! performance.
//!
//! ```sh
//! cargo run --release --example layout_explorer
//! ```

use clognet_core::System;
use clognet_proto::{LayoutKind, SystemConfig};

fn main() {
    println!("=== the four chip layouts of Figure 1 (C=CPU, M=memory, G=GPU) ===\n");
    for kind in LayoutKind::ALL {
        let cfg = SystemConfig {
            layout: kind,
            ..SystemConfig::default()
        };
        let layout = cfg.layout();
        let (req, rep) = SystemConfig::best_routing_for(kind);
        println!(
            "[{}]  best routing: {}-requests / {}-replies",
            kind.label(),
            req.label(),
            rep.label()
        );
        println!("{}", layout.ascii());
    }

    println!("=== measured trade-off (SRAD + x264) ===\n");
    println!(
        "{:<10} {:>9} {:>9} {:>11}",
        "layout", "GPU IPC", "CPU perf", "CPU net lat"
    );
    for kind in LayoutKind::ALL {
        let (req, rep) = SystemConfig::best_routing_for(kind);
        let mut cfg = SystemConfig::default().with_routing(req, rep);
        cfg.layout = kind;
        let mut sys = System::new(cfg, "SRAD", "x264");
        sys.run(5_000);
        sys.reset_stats();
        sys.run(15_000);
        let r = sys.report();
        println!(
            "{:<10} {:>9.2} {:>9.3} {:>11.1}",
            kind.label(),
            r.gpu_ipc,
            r.cpu_performance,
            r.cpu_net_latency
        );
    }
    println!(
        "\nBaseline isolates CPU and GPU traffic with a memory column between them;\n\
         B puts memory at the die edge (simpler packaging, more interference);\n\
         C clusters CPUs (best CPU communication, squeezed GPU bandwidth);\n\
         D spreads everything (good GPU distribution, CPU pays the distance)."
    );
}
