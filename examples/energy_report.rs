//! Area and energy report: the cost side of the design-space argument.
//!
//! Shows why the paper rejects NoC over-provisioning (2.5x area for 2x
//! bandwidth) and why Delegated Replies is cheap (0.172 mm², about 5% of
//! the over-provisioning increment), then measures the energy of a run
//! under each scheme.
//!
//! ```sh
//! cargo run --release --example energy_report
//! ```

use clognet_core::System;
use clognet_energy::{energy, DrArea, NetShape};
use clognet_proto::{Scheme, SystemConfig, Topology};

fn main() {
    let mesh = |channel_bytes| NetShape {
        topology: Topology::Mesh,
        width: 8,
        height: 8,
        channel_bytes,
        vcs: 2,
        vc_buf_flits: 4,
    };
    println!("=== area (DSENT-style model, 22 nm) ===\n");
    let base = 2.0 * mesh(16).area_mm2();
    let wide = 2.0 * mesh(32).area_mm2();
    println!("baseline request+reply mesh : {base:6.2} mm²   (paper: 2.27)");
    println!(
        "double-bandwidth mesh       : {wide:6.2} mm²   (paper: 5.76 — {:.1}x)",
        wide / base
    );
    let cfg = SystemConfig::default();
    let dr = DrArea::compute(cfg.n_gpu, cfg.n_mem, cfg.llc.slice, cfg.gpu.frq_entries);
    println!(
        "Delegated Replies hardware  : {:6.3} mm²   (pointers {:.3} + FRQs {:.3}; paper: 0.172)",
        dr.total_mm2(),
        dr.pointers_mm2,
        dr.frqs_mm2
    );
    println!(
        "DR cost as share of the 2x-NoC increment: {:.1}%  (paper: ~5%)\n",
        dr.total_mm2() / (wide - base) * 100.0
    );

    println!("=== energy of MM + canneal under each scheme ===\n");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>10}",
        "scheme", "flit-hops", "NoC dyn (J)", "total/instr(J)", "vs base"
    );
    let mut base_epi = 0.0;
    for scheme in [
        Scheme::Baseline,
        Scheme::DelegatedReplies,
        Scheme::rp_default(),
    ] {
        let cfg = SystemConfig::default().with_scheme(scheme);
        let mut sys = System::new(cfg, "MM", "canneal");
        sys.run(5_000);
        sys.reset_stats();
        sys.run(15_000);
        let r = sys.report();
        let e = energy(r.flit_hops, r.channel_bytes, base, r.cycles);
        let instr = r.gpu_ipc * r.cycles as f64;
        let epi = e.total_j() / instr;
        if scheme == Scheme::Baseline {
            base_epi = epi;
        }
        println!(
            "{:<10} {:>12} {:>12.4e} {:>14.3e} {:>9.1}%",
            scheme.label(),
            r.flit_hops,
            e.noc_dynamic_j,
            epi,
            (epi / base_epi - 1.0) * 100.0
        );
    }
    println!(
        "\nEnergy per instruction falls with DR because execution time does (the paper's\n\
         13.6% total-system saving); RP burns extra dynamic energy on probe traffic."
    );
}
