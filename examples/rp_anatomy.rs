//! Why Realistic Probing is "stuck between a rock and a hard place"
//! (Section III of the paper): sweep the probe fan-out and watch the
//! trade-off between finding remote copies (more probes = more finds)
//! and drowning the request network (more probes = more traffic and
//! latency). Delegated Replies gets the find-rate without the search.
//!
//! ```sh
//! cargo run --release --example rp_anatomy
//! ```

use clognet_core::System;
use clognet_proto::{CoreId, Scheme, SystemConfig};

fn main() {
    let (gpu, cpu) = ("HS", "ferret");
    println!("Realistic Probing anatomy on {gpu}+{cpu}\n");
    println!(
        "{:<14} {:>8} {:>10} {:>11} {:>10} {:>9}",
        "scheme", "GPU IPC", "probes", "probe-hit%", "req pkts", "vs base"
    );
    let mut base_ipc = 0.0;
    let mut base_req = 0;
    // Baseline, RP at several fan-outs, then DR for contrast.
    let schemes: Vec<(String, Scheme)> =
        std::iter::once(("baseline".to_string(), Scheme::Baseline))
            .chain([1usize, 2, 4, 8, 16].into_iter().map(|f| {
                (
                    format!("RP fanout {f}"),
                    Scheme::RealisticProbing { fanout: f },
                )
            }))
            .chain(std::iter::once((
                "DelegatedRep".to_string(),
                Scheme::DelegatedReplies,
            )))
            .collect();
    for (label, scheme) in schemes {
        let cfg = SystemConfig::default().with_scheme(scheme);
        let mut sys = System::new(cfg, gpu, cpu);
        sys.run(8_000);
        sys.reset_stats();
        sys.run(20_000);
        let r = sys.report();
        let mut hits_served = 0u64;
        let mut miss_served = 0u64;
        for i in 0..sys.config().n_gpu {
            let s = sys.gpu().stats(CoreId(i as u16));
            hits_served += s.probe_hits_served;
            miss_served += s.probe_misses_served;
        }
        let served = hits_served + miss_served;
        if scheme == Scheme::Baseline {
            base_ipc = r.gpu_ipc;
            base_req = r.request_packets;
        }
        println!(
            "{:<14} {:>8.2} {:>10} {:>10.1}% {:>10} {:>8.2}x",
            label,
            r.gpu_ipc,
            r.probes_sent,
            if served == 0 {
                0.0
            } else {
                hits_served as f64 / served as f64 * 100.0
            },
            r.request_packets,
            r.gpu_ipc / base_ipc,
        );
        if scheme == Scheme::DelegatedReplies {
            println!(
                "\nDR reaches {:.2}x with ZERO probes: the LLC's core pointer already\n\
                 knows who has the line ({:.0}% right), so there is nothing to search.",
                r.gpu_ipc / base_ipc,
                r.breakdown.remote_hit_rate() * 100.0
            );
            println!(
                "request-packet inflation vs baseline: RP pays for its search in\n\
                 bandwidth (the paper measured 5.9x total NoC requests); DR adds only\n\
                 1-flit delegations: {:.2}x here.",
                r.request_packets as f64 / base_req as f64
            );
        }
    }
}
