//! ASCII heatmap of reply-network link utilization: see the clog with
//! your own eyes. Each cell is a router; the four glyph positions around
//! it show the utilization of its N/E/S/W output links.
//!
//! ```sh
//! cargo run --release --example noc_heatmap            # baseline
//! cargo run --release --example noc_heatmap -- dr      # Delegated Replies
//! ```

use clognet_core::System;
use clognet_noc::mesh_port;
use clognet_proto::{NodeKind, Scheme, SystemConfig, TrafficClass};

fn glyph(util: f64) -> char {
    match (util * 100.0) as u32 {
        0 => '.',
        1..=10 => ':',
        11..=25 => '-',
        26..=45 => '=',
        46..=65 => '+',
        66..=85 => '#',
        _ => '@',
    }
}

fn main() {
    let dr = std::env::args().nth(1).as_deref() == Some("dr");
    let scheme = if dr {
        Scheme::DelegatedReplies
    } else {
        Scheme::Baseline
    };
    let cfg = SystemConfig::default().with_scheme(scheme);
    let mut sys = System::new(cfg, "2DCON", "canneal");
    sys.run(6_000);
    sys.reset_stats();
    sys.run(20_000);
    let net = sys.nets().net(TrafficClass::Reply);
    let stats = net.stats();
    let layout = sys.layout();
    println!(
        "reply-network link utilization under {} (2DCON + canneal)",
        scheme.label()
    );
    println!("cell = node kind; right glyph = east link, left = west, etc.");
    println!("scale: . 0%  : <10%  - <25%  = <45%  + <65%  # <85%  @ >=85%\n");
    let (w, h) = (layout.width(), layout.height());
    for y in 0..h {
        // Row 1: north links.
        let mut north = String::from("  ");
        let mut mid = String::new();
        let mut south = String::from("  ");
        for x in 0..w {
            let node = layout.node_at(x, y);
            let r = node.index();
            let kind = match layout.kind_of(node) {
                NodeKind::Gpu(_) => 'G',
                NodeKind::Cpu(_) => 'C',
                NodeKind::Mem(_) => 'M',
            };
            north.push(glyph(stats.link_utilization(r, mesh_port::NORTH)));
            north.push_str("     ");
            mid.push(glyph(stats.link_utilization(r, mesh_port::WEST)));
            mid.push(' ');
            mid.push(kind);
            mid.push(' ');
            mid.push(glyph(stats.link_utilization(r, mesh_port::EAST)));
            mid.push(' ');
            south.push(glyph(stats.link_utilization(r, mesh_port::SOUTH)));
            south.push_str("     ");
        }
        println!("{north}");
        println!("{mid}");
        println!("{south}");
    }
    let r = sys.report();
    println!(
        "\nGPU IPC {:.2}; memory nodes blocked {:.1}% of cycles; busiest mem reply link {:.1}%",
        r.gpu_ipc,
        r.mem_blocked_rate * 100.0,
        r.mem_reply_link_util * 100.0
    );
    if !dr {
        println!("rerun with `-- dr` to watch Delegated Replies spread the load");
    }
}
